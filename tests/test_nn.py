"""Tests for the neural-network application substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.registry import build
from repro.nn.dataset import IMAGE_SIZE, NUM_CLASSES, make_dataset
from repro.nn.evaluate import (
    evaluate_multipliers,
    float_accuracy,
    logit_distortion,
    trained_setup,
)
from repro.nn.mlp import FixedPointMlp, float_logits, train_mlp


class TestDataset:
    def test_deterministic(self):
        first = make_dataset(train_per_class=5, test_per_class=2)
        second = make_dataset(train_per_class=5, test_per_class=2)
        assert np.array_equal(first.train_x, second.train_x)
        assert np.array_equal(first.test_y, second.test_y)

    def test_shapes_and_ranges(self):
        data = make_dataset(train_per_class=5, test_per_class=3)
        assert data.train_x.shape == (5 * NUM_CLASSES, IMAGE_SIZE**2)
        assert data.test_x.shape == (3 * NUM_CLASSES, IMAGE_SIZE**2)
        assert data.train_x.dtype == np.uint8
        assert set(np.unique(data.train_y)) == set(range(NUM_CLASSES))

    def test_classes_are_separable(self):
        # nearest-template classification must beat chance by a wide margin
        data = make_dataset(train_per_class=20, test_per_class=10)
        centroids = np.stack(
            [
                data.train_x[data.train_y == label].mean(axis=0)
                for label in range(NUM_CLASSES)
            ]
        )
        distances = np.linalg.norm(
            data.test_x[:, None, :].astype(float) - centroids[None], axis=2
        )
        accuracy = np.mean(np.argmin(distances, axis=1) == data.test_y)
        assert accuracy > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            make_dataset(train_per_class=0)


class TestTraining:
    def test_float_model_learns(self):
        data, params = trained_setup()
        assert float_accuracy(data, params) > 0.93

    def test_weights_fit_q8(self):
        _, params = trained_setup()
        assert max(abs(params.w1).max(), abs(params.w2).max()) < 2.0

    def test_training_deterministic(self):
        data = make_dataset(train_per_class=10, test_per_class=5)
        first = train_mlp(data.train_x, data.train_y, epochs=2)
        second = train_mlp(data.train_x, data.train_y, epochs=2)
        assert np.array_equal(first.w1, second.w1)


class TestFixedPointInference:
    def test_accurate_quantization_matches_float(self):
        data, params = trained_setup()
        model = FixedPointMlp(params, AccurateMultiplier())
        fixed_accuracy = model.accuracy(data.test_x, data.test_y)
        assert abs(fixed_accuracy - float_accuracy(data, params)) < 0.03

    def test_quantized_logits_track_float(self):
        data, params = trained_setup()
        model = FixedPointMlp(params, AccurateMultiplier())
        fixed = model.logits(data.test_x[:50]).astype(np.float64)
        reference = float_logits(params, data.test_x[:50])
        # fixed logits live at scale 255 * 2^8
        scale = 255.0 * 256.0
        correlation = np.corrcoef(fixed.ravel(), (reference * scale).ravel())[0, 1]
        assert correlation > 0.999

    def test_single_sample_predict(self):
        data, params = trained_setup()
        model = FixedPointMlp(params, AccurateMultiplier())
        single = model.predict(data.test_x[0])
        assert single.shape == (1,)

    def test_rejects_narrow_multiplier(self):
        _, params = trained_setup()
        with pytest.raises(ValueError):
            FixedPointMlp(params, AccurateMultiplier(bitwidth=8))


class TestApproximateInference:
    def test_realm_negligible_accuracy_loss(self):
        results = evaluate_multipliers(["accurate", "realm16-t0", "realm4-t9"])
        assert results["realm16-t0"] >= results["accurate"] - 0.02
        assert results["realm4-t9"] >= results["accurate"] - 0.03

    def test_distortion_ordering_tracks_table1(self):
        distortion = logit_distortion(
            ["realm16-t0", "realm4-t9", "mbm-t0", "calm", "ssm-m8"]
        )
        assert (
            distortion["realm16-t0"]
            < distortion["realm4-t9"]
            < distortion["mbm-t0"]
            < distortion["calm"]
            < distortion["ssm-m8"]
        )

    def test_accurate_distortion_zero(self):
        assert logit_distortion(["accurate"])["accurate"] == 0.0


class TestCnn:
    def test_float_cnn_learns(self):
        from repro.nn.evaluate import float_cnn_accuracy, trained_cnn_setup

        data, params = trained_cnn_setup()
        assert float_cnn_accuracy(data, params) > 0.95

    def test_cnn_weights_fit_q8(self):
        from repro.nn.evaluate import trained_cnn_setup

        _, params = trained_cnn_setup()
        # conv filters train a little hotter than the MLP's dense rows;
        # 4.0 still leaves the Q8 magnitudes (< 1024) far inside the
        # 16-bit operand range the datapath requires
        assert max(abs(params.conv_w).max(), abs(params.fc_w).max()) < 4.0

    def test_cnn_training_deterministic(self):
        from repro.nn.cnn import train_cnn

        data = make_dataset(train_per_class=10, test_per_class=5)
        first = train_cnn(data.train_x, data.train_y, epochs=2)
        second = train_cnn(data.train_x, data.train_y, epochs=2)
        assert np.array_equal(first.conv_w, second.conv_w)
        assert np.array_equal(first.fc_w, second.fc_w)

    def test_accurate_cnn_quantization_matches_float(self):
        from repro.nn.cnn import FixedPointCnn
        from repro.nn.evaluate import float_cnn_accuracy, trained_cnn_setup

        data, params = trained_cnn_setup()
        model = FixedPointCnn(params, AccurateMultiplier())
        fixed = model.accuracy(data.test_x, data.test_y)
        assert abs(fixed - float_cnn_accuracy(data, params)) < 0.03

    def test_cnn_pool_is_exact_comparison_only(self):
        # pooling commutes with the fixed-point clip: the pooled fixed
        # activations equal pooling applied to the unpooled ones
        from repro.nn.cnn import _pool_forward

        rng = np.random.default_rng(5)
        act = rng.integers(0, 4096, (3, 36, 8)).astype(np.int64)
        pooled, _ = _pool_forward(act)
        grid = act.reshape(3, 6, 6, 8)
        want = np.stack(
            [
                grid[:, 2 * i : 2 * i + 2, 2 * j : 2 * j + 2, :].max(axis=(1, 2))
                for i in range(3)
                for j in range(3)
            ],
            axis=1,
        )
        assert np.array_equal(pooled, want)

    def test_cnn_rejects_narrow_multiplier(self):
        from repro.nn.cnn import FixedPointCnn
        from repro.nn.evaluate import trained_cnn_setup

        _, params = trained_cnn_setup()
        with pytest.raises(ValueError):
            FixedPointCnn(params, AccurateMultiplier(bitwidth=8))

    def test_cnn_operands_stay_in_sixteen_bits(self):
        # the FC layer sees conv activations rescaled to the input
        # scale; they must remain valid 16-bit multiplier operands
        from repro.nn.cnn import FixedPointCnn
        from repro.nn.evaluate import trained_cnn_setup
        from repro.nn.mlp import WEIGHT_FRACTION_BITS

        data, params = trained_cnn_setup()
        model = FixedPointCnn(params, AccurateMultiplier())
        patches = np.asarray(data.test_x, dtype=np.int64)
        acc = model._matmul(
            np.lib.stride_tricks.sliding_window_view(
                patches.reshape(-1, 8, 8), (3, 3), axis=(1, 2)
            ).reshape(len(patches), 36, 9),
            model.conv_w_q,
        ) + model.conv_b_q
        hidden = np.maximum(acc, 0) >> WEIGHT_FRACTION_BITS
        assert hidden.max() < (1 << 16)

    def test_approximate_cnn_accuracy(self):
        from repro.nn.evaluate import evaluate_cnn_multipliers

        results = evaluate_cnn_multipliers(
            ["accurate", "scaletrim-t4-c2", "dnnco-l6"]
        )
        assert results["scaletrim-t4-c2"] >= results["accurate"] - 0.05
        assert results["dnnco-l6"] >= results["accurate"] - 0.02

    def test_accurate_cnn_distortion_zero(self):
        from repro.nn.evaluate import cnn_logit_distortion

        assert cnn_logit_distortion(["accurate"])["accurate"] == 0.0


class TestCnnStudy:
    def test_rows_and_pareto(self):
        from repro.experiments import cnn_study

        rows = cnn_study(["accurate", "realm16-t0", "scaletrim-t4-c2"])
        by_name = {row["name"]: row for row in rows}
        assert set(by_name) == {"accurate", "realm16-t0", "scaletrim-t4-c2"}
        for row in rows:
            assert 0.0 <= row["accuracy"] <= 1.0
            assert isinstance(row["pareto"], bool)
        # accurate is dominated by any design with area savings and no
        # accuracy loss beyond it; at minimum the front is non-empty
        assert any(row["pareto"] for row in rows)
        assert by_name["accurate"]["area_reduction"] == 0.0

    def test_warehouse_roundtrip_feeds_report(self, tmp_path):
        from repro.experiments import cnn_study
        from repro.warehouse import build_trends, open_warehouse

        ids = ["accurate", "scaletrim-t4-c2"]
        first = cnn_study(ids, warehouse=tmp_path)
        second = cnn_study(ids, warehouse=tmp_path)
        assert [r["accuracy"] for r in first] == [r["accuracy"] for r in second]
        wh = open_warehouse(tmp_path)
        try:
            trends = build_trends(wh, kind="cnn")
        finally:
            wh.close()
        assert len(trends["runs"]) == 2
        # the second campaign must be served from the store
        assert trends["runs"][1]["reused"] == len(ids)
        apps = trends["applications"]
        assert set(apps) == set(ids)
        for name in ids:
            assert len(apps[name]) == 2
            assert apps[name][0]["accuracy"] == apps[name][1]["accuracy"]
            assert "area_reduction" in apps[name][0]
