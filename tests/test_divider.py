"""Tests for the REALM-style divider extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.divider import (
    MitchellDivider,
    RealmDivider,
    compute_divider_factors,
    divider_relative_error,
)


class TestErrorSurface:
    def test_always_overestimates(self):
        # both branches of the classical log divider are >= 0:
        # y(x-y)/(1+x) on x>=y and (y-x)(1-y)/(2(1+x)) on x<y
        rng = np.random.default_rng(101)
        x = rng.random(50000)
        y = rng.random(50000)
        assert np.all(divider_relative_error(x, y) >= -1e-12)

    def test_zero_on_diagonal_and_axes(self):
        assert divider_relative_error(0.3, 0.3) == pytest.approx(0.0)
        assert divider_relative_error(0.7, 0.0) == pytest.approx(0.0)

    def test_matches_branch_formulas(self):
        x, y = 0.8, 0.3
        assert divider_relative_error(x, y) == pytest.approx(
            y * (x - y) / (1 + x)
        )
        x, y = 0.2, 0.9
        assert divider_relative_error(x, y) == pytest.approx(
            (y - x) * (1 - y) / (2 * (1 + x))
        )


class TestFactors:
    def test_all_negative(self):
        # the divider overestimates, so every correction pulls down
        factors = compute_divider_factors(8)
        assert np.all(factors <= 0.0)

    def test_zero_mean_residual_continuous(self):
        # the Eq. 8 analogue: corrected error averages to ~0
        rng = np.random.default_rng(102)
        x = rng.random(200000)
        y = rng.random(200000)
        m = 8
        factors = compute_divider_factors(m)
        i = np.minimum((x * m).astype(int), m - 1)
        j = np.minimum((y * m).astype(int), m - 1)
        corrected = divider_relative_error(x, y) + factors[i, j] * (1 + y) / (1 + x)
        assert abs(corrected.mean()) < 5e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_divider_factors(0)
        with pytest.raises(ValueError):
            RealmDivider(m=6)


@pytest.fixture(scope="module")
def large_quotients():
    # big numerators / small denominators: the integer floor's 0.5/q bias
    # is negligible, so the measurement isolates the log-domain error
    rng = np.random.default_rng(103)
    a = rng.integers(32768, 65536, 1 << 17)
    b = rng.integers(1, 64, 1 << 17)
    return a, b


class TestDividers:
    def test_exact_for_power_of_two_ratios(self):
        divider = MitchellDivider()
        assert int(divider.divide(4096, 16)) == 256
        assert int(divider.divide(96, 3)) == 32  # 96 = 3 * 32, same fraction

    def test_zero_numerator(self):
        assert int(MitchellDivider().divide(0, 7)) == 0
        assert int(RealmDivider(m=4).divide(0, 7)) == 0

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            MitchellDivider().divide(5, 0)

    def test_mitchell_overestimates_large_quotients(self, large_quotients):
        a, b = large_quotients
        quotients = MitchellDivider().divide(a, b)
        errors = (quotients - a / b) / (a / b)
        assert errors.mean() > 0.03  # the +4% one-sided bias

    def test_realm_correction_removes_bias(self, large_quotients):
        a, b = large_quotients
        quotients = RealmDivider(m=8).divide(a, b)
        errors = (quotients - a / b) / (a / b)
        assert abs(errors.mean()) < 0.005

    def test_realm_beats_mitchell(self, large_quotients):
        a, b = large_quotients
        truef = a / b
        mitchell = np.abs(MitchellDivider().divide(a, b) - truef) / truef
        realm = np.abs(RealmDivider(m=8).divide(a, b) - truef) / truef
        assert realm.mean() < mitchell.mean() / 3

    def test_error_shrinks_with_m(self, large_quotients):
        a, b = large_quotients
        truef = a / b
        means = []
        for m in (4, 8, 16):
            errors = np.abs(RealmDivider(m=m).divide(a, b) - truef) / truef
            means.append(errors.mean())
        assert means[0] > means[1] > means[2]

    def test_scalar_interface(self):
        assert isinstance(int(RealmDivider(m=4).divide(1000, 3)), int)

    def test_names(self):
        assert MitchellDivider().name == "cALM-div16"
        assert RealmDivider(m=8).name == "REALM-div8"


class TestDividerRtl:
    @pytest.fixture(scope="class")
    def vectors(self):
        rng = np.random.default_rng(107)
        a = rng.integers(0, 1 << 16, 2000)
        b = rng.integers(1, 1 << 16, 2000)  # divisor zero is a don't-care
        a[:4] = [0, 65535, 1, 65535]
        b[:4] = [9, 1, 65535, 65535]
        return a, b

    def test_mitchell_netlist_matches_model(self, vectors):
        from repro.circuits.divider_rtl import mitchell_divider_netlist
        from repro.logic.sim import evaluate_words

        a, b = vectors
        netlist = mitchell_divider_netlist(16)
        got = evaluate_words(
            netlist, [netlist.inputs[:16], netlist.inputs[16:]], [a, b]
        )
        assert np.array_equal(got, MitchellDivider(16).divide(a, b))

    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_realm_netlist_matches_model(self, vectors, m):
        from repro.circuits.divider_rtl import realm_divider_netlist
        from repro.logic.sim import evaluate_words

        a, b = vectors
        netlist = realm_divider_netlist(16, m=m, q=6)
        got = evaluate_words(
            netlist, [netlist.inputs[:16], netlist.inputs[16:]], [a, b]
        )
        assert np.array_equal(got, RealmDivider(16, m=m, q=6).divide(a, b))

    def test_correction_lut_overhead_is_small(self):
        from repro.circuits.divider_rtl import (
            mitchell_divider_netlist,
            realm_divider_netlist,
        )

        base = mitchell_divider_netlist(16).area()
        corrected = realm_divider_netlist(16, m=8, q=6).area()
        assert corrected < base * 1.35  # same "little overhead" story

    def test_quantized_model_close_to_full_precision(self):
        rng = np.random.default_rng(108)
        a = rng.integers(32768, 65536, 1 << 16)
        b = rng.integers(1, 64, 1 << 16)
        truef = a / b
        full = np.abs(RealmDivider(m=8).divide(a, b) - truef) / truef
        quantized = np.abs(RealmDivider(m=8, q=6).divide(a, b) - truef) / truef
        assert quantized.mean() < full.mean() * 1.35

    def test_q_validation(self):
        with pytest.raises(ValueError):
            RealmDivider(m=4, q=2)
