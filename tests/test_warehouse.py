"""Tests for the experiment warehouse: store, incremental recompute,
concurrency, corruption containment, migration and the trend report."""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.analysis import telemetry
from repro.analysis.cache import clear_cache
from repro.analysis.designspace import sweep
from repro.analysis.montecarlo import characterize, characterize_many
from repro.core.realm import RealmMultiplier
from repro.experiments import table1_errors
from repro.multipliers.registry import build
from repro.warehouse import (
    SCHEMA_VERSION,
    Provenance,
    SchemaError,
    Warehouse,
    WarehouseError,
    build_trends,
    create_schema,
    metrics_fields,
    open_warehouse,
    render_json,
    render_text,
    resolve_warehouse_path,
)

SAMPLES = 1 << 12

PROVENANCE = Provenance(git_rev="f" * 40, engine_version=2, kernel_version=1)


def _metrics(**overrides):
    from repro.analysis.metrics import ErrorMetrics

    fields = {
        "bias": -0.125,
        "mean_error": 3.5,
        "peak_min": -11.0,
        "peak_max": 4.0,
        "variance": 9.25,
        "rms": 4.0,
        "nmed": 0.01,
        "samples": SAMPLES,
        "peak_certified": None,
    }
    fields.update(overrides)
    return ErrorMetrics(**fields)


def _record(wh, design="calm", metrics=None, reused=False, **run_kw):
    metrics = metrics if metrics is not None else _metrics()
    payload = {"kind": "uniform", "design": design, "samples": SAMPLES, "seed": 0}
    run_kw.setdefault("provenance", PROVENANCE)
    run_kw.setdefault("created", 1754600000.0)
    return wh.record_run(
        "characterize",
        [(design, payload, metrics_fields(metrics), reused)],
        seed=0,
        samples=SAMPLES,
        **run_kw,
    )


class TestStore:
    def test_roundtrip_preserves_metrics_exactly(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        metrics = _metrics(
            bias=0.1 + 0.2,  # not exactly 0.3: repr semantics must survive
            peak_certified=(-11.000000000000002, 3.9999999999999996),
        )
        payload = {"kind": "uniform", "design": "calm", "seed": 0}
        from repro.analysis.cache import cache_key

        wh.record_run(
            "characterize",
            [("calm", payload, metrics_fields(metrics), False)],
            seed=0,
            samples=SAMPLES,
            provenance=PROVENANCE,
            created=1754600000.0,
        )
        row = wh.latest(cache_key(payload))
        assert row.payload == payload
        assert row.design == "calm"
        assert not row.reused
        assert wh.latest_metrics(cache_key(payload)) == metrics

    def test_run_carries_full_provenance(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(
            wh,
            wall_seconds=1.25,
            counters={"cache.hits": 3, "warehouse.deltas": 1},
        )
        (run,) = wh.runs()
        assert run.kind == "characterize"
        assert run.git_rev == "f" * 40
        assert run.engine_version == 2
        assert run.kernel_version == 1
        assert run.seed == 0
        assert run.samples == SAMPLES
        assert run.wall_seconds == 1.25
        assert run.created == 1754600000.0
        assert run.counters == {"cache.hits": 3, "warehouse.deltas": 1}

    def test_latest_returns_newest_row_for_fingerprint(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(wh, metrics=_metrics(mean_error=1.0))
        _record(wh, metrics=_metrics(mean_error=2.0), reused=True)
        from repro.analysis.cache import cache_key

        payload = {"kind": "uniform", "design": "calm", "samples": SAMPLES, "seed": 0}
        row = wh.latest(cache_key(payload))
        assert row.data["mean_error"] == 2.0
        assert row.reused

    def test_unknown_fingerprint_and_invalid_data_are_misses(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        assert wh.latest("0" * 64) is None
        assert wh.latest_metrics("0" * 64) is None
        wh.record_run(
            "conformance",
            [("calm", {"kind": "conformance"}, {"pairs": 7}, False)],
            provenance=PROVENANCE,
            created=1754600000.0,
        )
        from repro.analysis.cache import cache_key

        # a conformance row is not a metrics row: treated as a miss
        assert wh.latest_metrics(cache_key({"kind": "conformance"})) is None

    def test_record_run_is_atomic(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        bad = object()  # not JSON-serializable: the insert fails mid-run

        with pytest.raises(WarehouseError):
            wh.record_run(
                "characterize",
                [
                    ("a", {"d": "a"}, {"x": 1}, False),
                    ("b", {"d": "b"}, {"x": bad}, False),
                ],
                provenance=PROVENANCE,
                created=1754600000.0,
            )
        # nothing landed: not the run, not the first (valid) result row
        assert wh.count_runs() == 0
        assert wh.count_results() == 0

    def test_export_is_deterministic(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(wh, "calm")
        _record(wh, "mbm-t0")
        first = json.dumps(wh.export(), sort_keys=True)
        second = json.dumps(wh.export(), sort_keys=True)
        assert first == second
        exported = wh.export()
        assert exported["schema_version"] == SCHEMA_VERSION
        assert [len(run["results"]) for run in exported["runs"]] == [1, 1]


class TestResolution:
    def test_off_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAREHOUSE_DIR", raising=False)
        assert resolve_warehouse_path(None) is None
        assert resolve_warehouse_path(False) is None

    def test_env_var_opts_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WAREHOUSE_DIR", str(tmp_path))
        assert resolve_warehouse_path(None) == tmp_path / "warehouse.db"

    def test_true_falls_back_to_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_WAREHOUSE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert (
            resolve_warehouse_path(True)
            == tmp_path / "warehouse" / "warehouse.db"
        )

    def test_explicit_paths(self, tmp_path):
        assert resolve_warehouse_path(tmp_path) == tmp_path / "warehouse.db"
        db = tmp_path / "other.db"
        assert resolve_warehouse_path(db) == db

    def test_false_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WAREHOUSE_DIR", str(tmp_path))
        assert resolve_warehouse_path(False) is None
        characterize(
            RealmMultiplier(m=4), samples=SAMPLES, warehouse=False, cache=False
        )
        assert not (tmp_path / "warehouse.db").exists()

    def test_env_var_opts_in_characterize(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WAREHOUSE_DIR", str(tmp_path))
        characterize(RealmMultiplier(m=4), samples=SAMPLES, cache=False)
        wh = Warehouse(tmp_path / "warehouse.db")
        assert wh.count_runs() == 1


class TestIncrementalRecompute:
    def test_warm_run_is_bit_identical_and_runs_nothing(self, tmp_path):
        designs = [("calm", build("calm")), ("mbm-t0", build("mbm-t0"))]
        cold = characterize_many(
            designs, samples=SAMPLES, warehouse=tmp_path, cache=False
        )
        with telemetry.recording() as rec:
            warm = characterize_many(
                designs, samples=SAMPLES, warehouse=tmp_path, cache=False
            )
        snap = rec.snapshot
        assert warm == cold  # ErrorMetrics dataclasses: bit-exact equality
        assert snap.counter("warehouse.hits") == 2
        assert snap.counter("warehouse.misses") == 0
        assert snap.counter("warehouse.deltas") == 0
        # the proof of "zero model evaluations": no engine phase ever ran
        assert snap.phase("characterize").count == 0

    def test_single_changed_design_recomputes_alone(self, tmp_path):
        designs = [
            ("calm", build("calm")),
            ("realm", RealmMultiplier(m=4, t=0)),
            ("mbm-t0", build("mbm-t0")),
        ]
        cold = characterize_many(
            designs, samples=SAMPLES, warehouse=tmp_path, cache=False
        )
        # change one design's knobs: its fingerprint (and only its) moves
        changed = [
            ("calm", build("calm")),
            ("realm", RealmMultiplier(m=4, t=3)),
            ("mbm-t0", build("mbm-t0")),
        ]
        with telemetry.recording() as rec:
            delta = characterize_many(
                changed, samples=SAMPLES, warehouse=tmp_path, cache=False
            )
        snap = rec.snapshot
        assert snap.counter("warehouse.deltas") == 1
        assert snap.counter("warehouse.hits") == 2
        assert snap.phase("characterize").count == 1
        # untouched designs come back bit-identical from the store
        assert delta["calm"] == cold["calm"]
        assert delta["mbm-t0"] == cold["mbm-t0"]
        # the changed design matches a cold standalone run exactly
        fresh = characterize(
            RealmMultiplier(m=4, t=3),
            samples=SAMPLES,
            warehouse=False,
            cache=False,
        )
        assert delta["realm"] == fresh

    def test_reused_flags_and_counters_recorded(self, tmp_path):
        designs = [("calm", build("calm")), ("mbm-t0", build("mbm-t0"))]
        characterize_many(designs, samples=SAMPLES, warehouse=tmp_path, cache=False)
        characterize_many(designs, samples=SAMPLES, warehouse=tmp_path, cache=False)
        wh = Warehouse(tmp_path / "warehouse.db")
        cold_run, warm_run = wh.runs()
        assert [r.reused for r in wh.results(cold_run.id)] == [False, False]
        assert [r.reused for r in wh.results(warm_run.id)] == [True, True]
        # the cold run captured its recompute counters (one engine phase
        # per recomputed design); the warm run ran nothing
        assert cold_run.counters.get("phase.characterize") == 2
        assert warm_run.counters == {}

    def test_warehouse_and_cache_compose(self, tmp_path):
        cache_dir = tmp_path / "cache"
        wh_dir = tmp_path / "wh"
        multiplier = RealmMultiplier(m=4)
        first = characterize(
            multiplier, samples=SAMPLES, cache=cache_dir, warehouse=wh_dir
        )
        # drop the warehouse: the recompute is served by the metrics cache
        (wh_dir / "warehouse.db").unlink()
        second = characterize(
            multiplier, samples=SAMPLES, cache=cache_dir, warehouse=wh_dir
        )
        assert second == first
        wh = Warehouse(wh_dir / "warehouse.db")
        (run,) = wh.runs()
        assert run.counters.get("cache.hits") == 1


class TestSweepIntegration:
    IDS = ("calm", "mbm-t0")

    def test_warm_sweep_zero_model_evaluations(self, tmp_path):
        cold = sweep(
            self.IDS, samples=SAMPLES, source="model",
            warehouse=tmp_path, cache=False,
        )
        with telemetry.recording() as rec:
            warm = sweep(
                self.IDS, samples=SAMPLES, source="model",
                warehouse=tmp_path, cache=False,
            )
        snap = rec.snapshot
        assert snap.counter("warehouse.deltas") == 0
        assert snap.counter("warehouse.hits") == len(self.IDS)
        assert snap.phase("characterize").count == 0  # zero evaluations
        assert warm == cold  # DesignPoints embed the metrics: bit-identical

    def test_sweep_rows_carry_synthesis_columns(self, tmp_path):
        points = sweep(
            self.IDS, samples=SAMPLES, source="model",
            warehouse=tmp_path, cache=False,
        )
        wh = Warehouse(tmp_path / "warehouse.db")
        (run,) = wh.runs(kind="sweep")
        rows = {r.design: r for r in wh.results(run.id)}
        for point in points:
            assert rows[point.name].data["area_reduction"] == point.area_reduction
            assert rows[point.name].data["power_reduction"] == point.power_reduction
            assert rows[point.name].data["source"] == "model"

    def test_delta_sweep_bit_identical_on_changed_design(self, tmp_path, monkeypatch):
        import repro.analysis.designspace as designspace

        cold = {
            p.name: p
            for p in sweep(
                self.IDS, samples=SAMPLES, source="model",
                warehouse=tmp_path, cache=False,
            )
        }
        # mutate one design underneath the registry: only it may re-run
        changed = RealmMultiplier(m=4, t=3)
        real_build = designspace.build
        monkeypatch.setattr(
            designspace,
            "build",
            lambda name: changed if name == "calm" else real_build(name),
        )
        with telemetry.recording() as rec:
            delta = {
                p.name: p
                for p in sweep(
                    self.IDS, samples=SAMPLES, source="model",
                    warehouse=tmp_path, cache=False,
                )
            }
        snap = rec.snapshot
        assert snap.counter("warehouse.deltas") == 1
        assert snap.phase("characterize").count == 1
        assert delta["mbm-t0"].metrics == cold["mbm-t0"].metrics
        fresh = characterize(changed, samples=SAMPLES, warehouse=False, cache=False)
        assert delta["calm"].metrics == fresh

    def test_table1_records_one_run(self, tmp_path):
        rows = table1_errors(
            samples=SAMPLES, ids=self.IDS, warehouse=tmp_path, cache=False
        )
        assert {row["name"] for row in rows} == set(self.IDS)
        wh = Warehouse(tmp_path / "warehouse.db")
        (run,) = wh.runs(kind="table1")
        assert run.samples == SAMPLES
        assert wh.designs() == sorted(self.IDS)


class TestConcurrency:
    def test_two_processes_interleave_without_lost_rows(self, tmp_path):
        db = tmp_path / "warehouse.db"
        Warehouse(db).connect()  # schema exists before the writers race
        script = """
import sys
sys.path.insert(0, {src!r})
from repro.warehouse import Provenance, Warehouse
wh = Warehouse({db!r})
tag = sys.argv[1]
prov = Provenance(git_rev=None, engine_version=2, kernel_version=1)
for index in range(20):
    wh.record_run(
        "characterize",
        [(f"{{tag}}-{{index}}", {{"design": f"{{tag}}-{{index}}"}}, {{"x": index}}, False)],
        seed=index,
        provenance=prov,
        created=1754600000.0,
    )
print("done", tag)
""".format(src=os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
           db=str(db))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, tag],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for tag in ("alpha", "beta")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out
        wh = Warehouse(db)
        assert wh.count_runs() == 40
        assert wh.count_results() == 40
        designs = set(wh.designs())
        for tag in ("alpha", "beta"):
            for index in range(20):
                assert f"{tag}-{index}" in designs


class TestCorruption:
    def test_corrupt_db_is_quarantined_and_rebuilt(self, tmp_path):
        db = tmp_path / "warehouse.db"
        db.write_bytes(b"this is not a sqlite database, not even close")
        with telemetry.recording() as rec:
            metrics = characterize(
                RealmMultiplier(m=4), samples=SAMPLES,
                warehouse=tmp_path, cache=False,
            )
        assert metrics.samples > 0  # the run itself never failed
        assert rec.snapshot.counter("warehouse.quarantined") == 1
        quarantined = list(tmp_path.glob("warehouse.db.corrupt-*"))
        assert len(quarantined) == 1  # the evidence stays on disk
        wh = Warehouse(db)  # and the rebuilt store recorded the run
        assert wh.count_runs() == 1

    def test_truncated_db_is_quarantined(self, tmp_path):
        db = tmp_path / "warehouse.db"
        wh = Warehouse(db)
        _record(wh)
        wh.close()
        db.write_bytes(db.read_bytes()[: db.stat().st_size // 3])
        metrics = characterize(
            RealmMultiplier(m=4), samples=SAMPLES,
            warehouse=tmp_path, cache=False,
        )
        assert metrics.samples > 0
        assert list(tmp_path.glob("warehouse.db.corrupt-*"))

    def test_newer_schema_is_refused_not_downgraded(self, tmp_path):
        db = tmp_path / "warehouse.db"
        wh = Warehouse(db)
        _record(wh)
        wh.connect().execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
        )
        wh.close()
        with pytest.raises(WarehouseError):
            Warehouse(db).connect()
        # open_warehouse degrades to "warehouse off", never crashes
        with telemetry.recording() as rec:
            assert open_warehouse(tmp_path) is None
        assert rec.snapshot.counter("warehouse.errors") == 1
        metrics = characterize(
            RealmMultiplier(m=4), samples=SAMPLES,
            warehouse=tmp_path, cache=False,
        )
        assert metrics.samples > 0
        # the future database survives untouched for the newer build
        row = sqlite3.connect(db).execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        assert row[0] == "99"


class TestMigration:
    def _v1_database(self, path):
        connection = sqlite3.connect(path)
        create_schema(connection, version=1)
        connection.execute("BEGIN IMMEDIATE")
        cursor = connection.execute(
            "INSERT INTO runs (kind, created, wall_seconds, git_rev,"
            " engine_version, kernel_version, seed, samples)"
            " VALUES ('characterize', 1700000000.0, 2.5, 'abc', 2, 1, 0, 4096)"
        )
        connection.execute(
            "INSERT INTO results (run_id, design, fingerprint, payload, data)"
            " VALUES (?, 'calm', 'deadbeef', '{}', '{\"mean_error\": 3.5}')",
            (cursor.lastrowid,),
        )
        connection.commit()
        connection.close()

    def test_v1_upgrades_in_place_losing_no_rows(self, tmp_path):
        db = tmp_path / "warehouse.db"
        self._v1_database(db)
        wh = Warehouse(db)
        wh.connect()
        assert wh.schema_version == SCHEMA_VERSION
        (run,) = wh.runs()
        assert run.kind == "characterize"
        assert run.git_rev == "abc"
        assert run.counters == {}  # the new column defaults clean
        (result,) = wh.results(run.id)
        assert result.design == "calm"
        assert result.data == {"mean_error": 3.5}
        assert result.reused is False
        # and a v2 write into the migrated store works
        _record(wh, "mbm-t0")
        assert wh.count_runs() == 2

    def test_create_schema_rejects_unknown_versions(self, tmp_path):
        connection = sqlite3.connect(tmp_path / "x.db")
        with pytest.raises(SchemaError):
            create_schema(connection, version=0)
        with pytest.raises(SchemaError):
            create_schema(connection, version=SCHEMA_VERSION + 1)


class TestClearCache:
    def test_clear_cache_drops_warehouse_and_subsystem_stores(self, tmp_path):
        # one file in every subsystem store under the cache directory
        (tmp_path / "entry.json").write_text("{}")
        for sub in ("checkpoints", "formal", "conformance"):
            (tmp_path / sub).mkdir()
            (tmp_path / sub / "a.json").write_text("{}")
        wh_dir = tmp_path / "warehouse"
        wh_dir.mkdir()
        (wh_dir / "warehouse.db").write_bytes(b"db")
        (wh_dir / "warehouse.db.corrupt-123").write_bytes(b"old")
        assert clear_cache(tmp_path) == 6
        assert list(tmp_path.rglob("*.json")) == []
        assert list(wh_dir.iterdir()) == []

    def test_clear_cache_covers_a_real_warehouse(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_WAREHOUSE_DIR", raising=False)
        characterize(
            RealmMultiplier(m=4), samples=SAMPLES, cache=True, warehouse=True
        )
        assert (tmp_path / "warehouse" / "warehouse.db").exists()
        assert clear_cache(tmp_path) == 2  # the metrics entry + the database
        assert not (tmp_path / "warehouse" / "warehouse.db").exists()


class TestTrendReport:
    def test_trends_track_error_across_runs(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(wh, metrics=_metrics(mean_error=3.5))
        _record(wh, metrics=_metrics(mean_error=3.25), reused=False)
        trends = build_trends(wh)
        assert [run["recomputed"] for run in trends["runs"]] == [1, 1]
        points = trends["designs"]["calm"]
        assert [p["mean_error"] for p in points] == [3.5, 3.25]
        text = render_text(trends)
        assert "calm" in text and "recorded runs (2)" in text

    def test_certified_peaks_preferred(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(wh, metrics=_metrics(peak_certified=(-9.5, 2.5)))
        (point,) = build_trends(wh)["designs"]["calm"]
        assert point["certified"]
        assert point["peak_min"] == -9.5
        assert point["peak_max"] == 2.5

    def test_json_rendering_is_byte_stable(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(wh, "calm")
        _record(wh, "mbm-t0")
        assert render_json(build_trends(wh)) == render_json(build_trends(wh))

    def test_filters(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        _record(wh, "calm")
        wh.record_run(
            "conformance",
            [("calm", {"kind": "conformance"}, {"pairs": 9}, False)],
            provenance=PROVENANCE,
            created=1754600001.0,
        )
        assert len(build_trends(wh)["runs"]) == 2
        assert len(build_trends(wh, kind="conformance")["runs"]) == 1
        assert len(build_trends(wh, limit=1)["runs"]) == 1

    def test_empty_store_renders_cleanly(self, tmp_path):
        wh = Warehouse(tmp_path / "warehouse.db")
        trends = build_trends(wh)
        assert trends["runs"] == []
        assert "empty" in render_text(trends)


class TestCampaignRecording:
    def test_conformance_run_recorded(self, tmp_path):
        from repro.conformance import fuzz

        result = fuzz("realm4-t0", budget=1 << 10, warehouse=tmp_path, cache=False)
        wh = Warehouse(tmp_path / "warehouse.db")
        (run,) = wh.runs(kind="conformance")
        (row,) = wh.results(run.id)
        assert row.data["pairs"] == result.pairs
        assert row.data["total_divergences"] == result.total_divergences
        assert row.data["full_cover"] == result.full_cover
        assert run.samples == result.pairs

    def test_formal_cli_records_certificates(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "formal", "--design", "realm-8-m4-q4", "--bitwidth", "8",
                "--max-error", "--no-cache", "--warehouse", str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        wh = Warehouse(tmp_path / "warehouse.db")
        (run,) = wh.runs(kind="formal")
        (row,) = wh.results(run.id)
        assert row.data["kind"] == "worst-case-error"
        assert row.data["exact"] and row.data["replayed"]
