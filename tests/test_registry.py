"""Tests for the named-configuration registry and the paper data tables."""

from __future__ import annotations

import pytest

from repro import paper
from repro.multipliers.registry import (
    REGISTRY,
    TABLE1_IDS,
    build,
    iter_multipliers,
    names,
)


class TestRegistry:
    def test_all_designs_buildable(self):
        for name in names():
            multiplier = build(name)
            assert multiplier.bitwidth == 16
            assert int(multiplier.multiply(0, 0)) == 0

    def test_bitwidth_forwarded(self):
        assert build("calm", bitwidth=8).bitwidth == 8
        assert build("realm4-t0", bitwidth=12).bitwidth == 12

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build("realm32-t0")

    def test_table1_ids_exclude_accurate(self):
        assert "accurate" not in TABLE1_IDS
        assert set(TABLE1_IDS) | {"accurate"} == set(REGISTRY)

    def test_expected_families_present(self):
        expected = {
            "accurate", "calm", "implm-ea", "essm8",
            "realm16-t0", "realm8-t9", "realm4-t5",
            "mbm-t0", "mbm-t9",
            "alm-maa-m3", "alm-soa-m12",
            "intalp-l1", "intalp-l2",
            "am1-nb13", "am2-nb5",
            "drum-k8", "drum-k4",
            "ssm-m10", "ssm-m8",
        }
        assert expected <= set(REGISTRY)

    def test_design_count_matches_table1(self):
        # 30 REALM + 1 cALM + 1 ImpLM + 6 MBM + 10 ALM + 2 IntALP +
        # 6 AM + 5 DRUM + 3 SSM + 1 ESSM = 65 paper designs, plus the
        # 4 scaleTRIM + 3 DNNCO configurations from the related work
        assert len(TABLE1_IDS) == 72

    def test_iter_multipliers(self):
        pairs = list(iter_multipliers(("calm", "drum-k8")))
        assert [name for name, _ in pairs] == ["calm", "drum-k8"]
        assert pairs[1][1].name == "DRUM (k=8)"

    def test_display_names_match_paper_style(self):
        assert build("realm16-t3").name == "REALM16 (t=3)"
        assert build("alm-soa-m11").name == "ALM-SOA (m=11)"
        assert build("essm8").name == "ESSM8 (m=8)"
        assert build("implm-ea").name == "ImpLM (EA)"


class TestPaperData:
    def test_table1_covers_all_registry_designs(self):
        # every published row maps to a registry id; ids beyond the
        # paper's Table I come only from the related-work families
        assert set(paper.TABLE1) <= set(TABLE1_IDS)
        extras = set(TABLE1_IDS) - set(paper.TABLE1)
        assert extras == {
            name
            for name in TABLE1_IDS
            if name.startswith(("scaletrim", "dnnco"))
        }

    def test_reference_point(self):
        assert paper.ACCURATE_AREA_UM2 == pytest.approx(1898.1)
        assert paper.ACCURATE_POWER_UW == pytest.approx(821.9)

    def test_headline_rows_complete(self):
        # the rows every bench quotes must be fully legible
        for name in ("realm16-t0", "realm4-t9", "calm", "drum-k8", "mbm-t0"):
            row = paper.TABLE1[name]
            assert None not in row

    def test_table2_shape(self):
        assert set(paper.TABLE2_PSNR) == set(paper.TABLE2_IMAGES)
        for image in paper.TABLE2_IMAGES:
            assert set(paper.TABLE2_PSNR[image]) == set(paper.TABLE2_MULTIPLIERS)

    def test_table2_accurate_psnr_band(self):
        for image in paper.TABLE2_IMAGES:
            assert 30.0 <= paper.TABLE2_PSNR[image]["accurate"] <= 33.0
