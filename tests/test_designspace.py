"""Tests for the Fig. 4 design-space sweep and Pareto analysis."""

from __future__ import annotations

import pytest

from repro.analysis.designspace import (
    MAX_MEAN_ERROR,
    MAX_PEAK_ERROR,
    fig4_front,
    fig4_points,
    sweep,
)

SMALL = 1 << 18  # enough samples for stable mean errors in tests


@pytest.fixture(scope="module")
def paper_points():
    # paper-synthesis source isolates the error reproduction and is fast
    return sweep(samples=SMALL, source="paper")


@pytest.fixture(scope="module")
def model_points():
    ids = (
        "realm16-t0",
        "realm8-t4",
        "realm4-t9",
        "calm",
        "mbm-t0",
        "drum-k8",
        "drum-k6",
        "ssm-m9",
        "alm-soa-m11",
    )
    return sweep(ids=ids, samples=SMALL, source="model")


class TestSweep:
    def test_paper_source_covers_legible_rows(self, paper_points):
        names = {p.name for p in paper_points}
        assert "realm16-t0" in names
        assert "calm" in names
        # rows with illegible synthesis cells are skipped, not invented
        assert "realm8-t1" not in names

    def test_point_fields(self, paper_points):
        point = next(p for p in paper_points if p.name == "realm16-t0")
        assert point.is_realm
        assert point.display == "REALM16 (t=0)"
        assert point.area_reduction == pytest.approx(50.0)
        assert point.mean_error == pytest.approx(0.42, abs=0.03)
        assert point.peak_error == pytest.approx(2.08, abs=0.25)

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            sweep(ids=("calm",), samples=1 << 10, source="guess")


class TestFig4:
    def test_constraints_filter(self, paper_points):
        kept = fig4_points(paper_points)
        assert all(p.mean_error <= MAX_MEAN_ERROR for p in kept)
        assert all(p.peak_error <= MAX_PEAK_ERROR for p in kept)
        names = {p.name for p in kept}
        assert "drum-k4" not in names  # ME 5.9% exceeds the plot bound
        assert "am1-nb13" not in names  # peak -61% exceeds the plot bound

    def test_paper_pareto_dominated_by_realm(self, paper_points):
        # the paper's core claim: "the Pareto front is primarily achieved
        # by our proposed REALM"
        for efficiency in ("area", "power"):
            for error in ("mean", "peak"):
                front = fig4_front(paper_points, efficiency, error)
                realm_share = sum(1 for n in front if n.startswith("realm"))
                assert realm_share >= len(front) / 2, (efficiency, error, front)

    def test_paper_front_endpoints(self, paper_points):
        # paper: DRUM8 holds the low-error end of the front
        front = fig4_front(paper_points, "area", "mean")
        assert "drum-k8" in front

    def test_model_source_front_also_realm_heavy(self, model_points):
        front = fig4_front(model_points, "power", "mean")
        realm_share = sum(1 for n in front if n.startswith("realm"))
        assert realm_share >= len(front) / 2

    def test_front_is_sorted_by_efficiency(self, paper_points):
        front = fig4_front(paper_points, "power", "mean")
        coords = {p.name: p.power_reduction for p in paper_points}
        values = [coords[name] for name in front]
        assert values == sorted(values)

    def test_invalid_axes(self, paper_points):
        with pytest.raises(ValueError):
            fig4_front(paper_points, "energy", "mean")
        with pytest.raises(ValueError):
            fig4_front(paper_points, "area", "rms")
