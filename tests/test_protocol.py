"""Property and unit tests for the serve wire protocol.

The framing layer claims to be *total*: for any input, ``decode_frame``
and ``parse_request`` either return a value or raise
:class:`~repro.serve.protocol.ProtocolError` — nothing else escapes.
Hypothesis drives that claim with arbitrary bytes and arbitrary JSON;
the unit tests pin down the specific rejection messages and the closed
error-code set.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    MAX_PAIRS,
    CharacterizeRequest,
    DesignsRequest,
    MultiplyRequest,
    PingRequest,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)

# JSON-representable values (exact round-trip: no floats — the protocol
# never uses them, and they would conflate codec bugs with float noise)
json_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)
json_objects = st.dictionaries(st.text(max_size=12), json_values, max_size=6)


class TestFraming:
    @given(obj=json_objects)
    def test_round_trip(self, obj):
        assert decode_frame(encode_frame(obj)) == obj

    @given(obj=json_objects)
    def test_frames_are_single_lines(self, obj):
        frame = encode_frame(obj)
        assert frame.endswith(b"\n")
        assert b"\n" not in frame[:-1]

    @given(payload=st.binary(max_size=256))
    def test_arbitrary_bytes_never_escape_protocol_error(self, payload):
        try:
            result = decode_frame(payload)
        except ProtocolError as exc:
            assert exc.code in ERROR_CODES
        else:
            assert isinstance(result, dict)

    @given(payload=st.text(max_size=256))
    def test_arbitrary_text_never_escapes_protocol_error(self, payload):
        try:
            result = decode_frame(payload)
        except ProtocolError as exc:
            assert exc.code in ERROR_CODES
        else:
            assert isinstance(result, dict)

    @pytest.mark.parametrize(
        "frame,fragment",
        [
            (b"\xff\xfe", "not UTF-8"),
            (b"[1,2,3]\n", "must be a JSON object"),
            (b'"just a string"\n', "must be a JSON object"),
            (b"{broken\n", "not JSON"),
            (12345, "must be bytes or str"),
        ],
    )
    def test_specific_bad_frames(self, frame, fragment):
        with pytest.raises(ProtocolError, match=fragment) as info:
            decode_frame(frame)
        assert info.value.code == "bad-frame"

    def test_oversized_frame_rejected(self):
        blob = b"x" * (MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds") as info:
            decode_frame(blob)
        assert info.value.code == "bad-frame"


class TestParseRequest:
    @given(obj=json_objects)
    @settings(max_examples=200)
    def test_arbitrary_objects_never_escape_protocol_error(self, obj):
        try:
            request = parse_request(obj)
        except ProtocolError as exc:
            assert exc.code in ERROR_CODES
        else:
            assert isinstance(
                request,
                (MultiplyRequest, CharacterizeRequest, DesignsRequest, PingRequest),
            )

    @given(
        a=st.lists(st.integers(0, 65535), min_size=1, max_size=8),
        b=st.lists(st.integers(0, 65535), min_size=1, max_size=8),
    )
    def test_multiply_accepts_matching_or_broadcast_lengths(self, a, b):
        obj = {"op": "multiply", "design": "calm", "a": a, "b": b}
        compatible = len(a) == len(b) or 1 in (len(a), len(b))
        if compatible:
            request = parse_request(obj)
            assert request.a == tuple(a) and request.b == tuple(b)
            assert not request.scalar
        else:
            with pytest.raises(ProtocolError, match="lengths differ"):
                parse_request(obj)

    def test_multiply_scalar_round_trip(self):
        request = parse_request(
            {"op": "multiply", "design": "accurate", "a": 3, "b": 4}
        )
        assert request.scalar
        assert request.a == (3,) and request.b == (4,)

    def test_mixed_scalar_vector_is_not_scalar(self):
        request = parse_request(
            {"op": "multiply", "design": "accurate", "a": 3, "b": [4, 5]}
        )
        assert not request.scalar

    @pytest.mark.parametrize(
        "obj,fragment",
        [
            ({}, "missing required field 'op'"),
            ({"op": "frobnicate"}, "unknown op"),
            ({"op": "multiply", "a": [1], "b": [1]}, "missing required field"),
            ({"op": "multiply", "design": 7, "a": [1], "b": [1]}, "must be str"),
            ({"op": "multiply", "design": "x", "a": [], "b": []}, "not be empty"),
            ({"op": "multiply", "design": "x", "a": [True], "b": [1]}, "only integers"),
            ({"op": "multiply", "design": "x", "a": [1.5], "b": [1]}, "only integers"),
            ({"op": "multiply", "design": "x", "a": "12", "b": [1]}, "integer or list"),
            ({"op": "multiply", "design": "x", "a": True, "b": 1}, "integer or list"),
            (
                {"op": "multiply", "design": "x", "a": 1, "b": 1, "bitwidth": 1},
                "must be >= 2",
            ),
            (
                {"op": "multiply", "design": "x", "a": 1, "b": 1, "bitwidth": 32},
                "must be <= 31",
            ),
            (
                {"op": "multiply", "design": "x", "a": 1, "b": 1, "bitwidth": 8.0},
                "must be an integer",
            ),
            ({"op": "multiply", "design": "x", "a": 1, "b": 1, "id": []}, "'id'"),
            ({"op": "characterize", "design": "x", "samples": 0}, "must be >= 1"),
            ({"op": "characterize", "design": "x", "seed": -1}, "must be >= 0"),
            ({"op": "characterize", "design": "x", "samples": True}, "integer"),
            ({"op": "designs", "prefix": 9}, "'prefix' must be a string"),
        ],
    )
    def test_schema_violations(self, obj, fragment):
        with pytest.raises(ProtocolError, match=fragment) as info:
            parse_request(obj)
        assert info.value.code == "bad-request"

    def test_operand_vector_size_bound(self):
        obj = {
            "op": "multiply",
            "design": "x",
            "a": [1] * (MAX_PAIRS + 1),
            "b": 1,
        }
        with pytest.raises(ProtocolError, match=str(MAX_PAIRS)):
            parse_request(obj)

    def test_defaults(self):
        multiply = parse_request(
            {"op": "multiply", "design": "calm", "a": 1, "b": 2}
        )
        assert multiply.bitwidth == 16 and multiply.id is None
        char = parse_request({"op": "characterize", "design": "calm"})
        assert (char.bitwidth, char.samples, char.seed) == (16, 1 << 16, 2020)
        assert parse_request({"op": "designs"}).prefix == ""
        assert parse_request({"op": "ping"}).id is None


class TestResponses:
    def test_ok_shape(self):
        response = ok_response(7, {"x": 1})
        assert response == {"id": 7, "ok": True, "result": {"x": 1}}

    @pytest.mark.parametrize("code", sorted(ERROR_CODES))
    def test_every_closed_code_passes_through(self, code):
        response = error_response("r1", code, "why")
        assert response["error"] == {"code": code, "message": "why"}
        assert response["ok"] is False

    def test_unknown_code_downgrades_to_internal(self):
        response = error_response(None, "made-up", "oops")
        assert response["error"]["code"] == "internal"
        assert "made-up" in response["error"]["message"]

    @given(obj=json_objects)
    def test_responses_always_encode(self, obj):
        # whatever the request id was, responses stay encodable frames
        request_id = obj.get("id")
        if not isinstance(request_id, (str, int, type(None))):
            request_id = None
        frame = encode_frame(error_response(request_id, "bad-request", "x"))
        assert json.loads(frame)["ok"] is False
