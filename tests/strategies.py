"""Shared hypothesis strategies and design-id families for the suite.

Extracted from ``test_multiplier_properties.py`` so the property tests
and the conformance tests draw operands and design ids from one place
instead of copy-pasting the generators.  The id families encode the
*structural* facts about each datapath (symmetry, exactness on powers of
two, truncation-only) that the metamorphic relations rely on.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.multipliers.registry import REGISTRY

__all__ = [
    "ALL_IDS",
    "COMMUTATIVE_IDS",
    "POW2_EXACT_IDS",
    "UNDERESTIMATE_IDS",
    "bitwidths",
    "corner_operands",
    "design_ids",
    "exponents",
    "operand_pairs",
    "operands",
    "signed_operands",
]

ALL_IDS = sorted(REGISTRY)

# families whose datapaths are symmetric in the two operands; AM gates the
# partial products of a by the bits of b, and ALM-MAA's approximate adder
# takes the low sum bits from one operand and the carry from the other,
# so both are legitimately asymmetric
COMMUTATIVE_IDS = [
    n for n in ALL_IDS if not n.startswith(("am1", "am2", "alm-maa"))
]

# designs for which 2^i * 2^j is computed exactly: a power of two has a
# zero Mitchell fraction, so pure log designs (cALM, ImpLM, IntALP) are
# exact there, as are the segment/broken-array designs that keep the
# leading one (SSM/ESSM, AM, ALM-MAA) and the accurate baseline.
# scaleTRIM qualifies (its compensation LUT is zero on the zero-fraction
# row/column) and DNNCO does too (a power of two contributes one partial
# product per column, so the OR equals the column sum).  REALM and MBM
# are excluded — their correction LUT / round-up bit perturbs even
# zero-fraction operands — as are DRUM (unbiasing set bit) and ALM-SOA
# (set-once approximate adder).
POW2_EXACT_IDS = [
    n
    for n in ALL_IDS
    if n == "accurate"
    or n.startswith(("alm-maa", "am1", "am2", "calm", "dnnco", "essm",
                     "implm", "intalp", "scaletrim", "ssm"))
]

# designs the paper guarantees never overestimate: truncation-only
# datapaths (SSM/ESSM segment truncation, AM broken arrays, cALM's
# floor-log) always drop weight, scaleTRIM compensates with a provable
# lower bound of the dropped term, and DNNCO replaces column sums by ORs
# (OR <= sum).  REALM/MBM add correction terms and DRUM rounds up, so
# they can exceed the exact product.
UNDERESTIMATE_IDS = [
    n
    for n in ALL_IDS
    if n == "accurate"
    or n.startswith(("am1", "am2", "calm", "dnnco", "essm", "scaletrim", "ssm"))
]


def operands(bitwidth: int = 16) -> st.SearchStrategy:
    """A single unsigned operand of the given width."""
    return st.integers(min_value=0, max_value=(1 << bitwidth) - 1)


def operand_pairs(bitwidth: int = 16) -> st.SearchStrategy:
    """An ``(a, b)`` operand pair of the given width."""
    one = operands(bitwidth)
    return st.tuples(one, one)


def signed_operands(bitwidth: int = 16) -> st.SearchStrategy:
    """A two's-complement operand for the signed wrapper interface."""
    return st.integers(
        min_value=-(1 << (bitwidth - 1)), max_value=(1 << (bitwidth - 1)) - 1
    )


def corner_operands(bitwidth: int = 16) -> st.SearchStrategy:
    """An operand biased toward the structural corners of the datapaths.

    Half the draws land on the characteristic-switch points — zero, the
    extremes, and power-of-two neighborhoods where the log families'
    leading-one position changes — the same high-yield regions
    ``repro.formal.equiv.sample_operands`` seeds validation legs with.
    """
    top = (1 << bitwidth) - 1
    corners = sorted(
        {
            v
            for k in range(bitwidth)
            for v in ((1 << k) - 1, 1 << k, (1 << k) + 1)
            if 0 <= v <= top
        }
        | {0, 1, top, top - 1}
    )
    return st.one_of(st.sampled_from(corners), operands(bitwidth))


def exponents(bitwidth: int = 16) -> st.SearchStrategy:
    """A power-of-two exponent that fits the operand width."""
    return st.integers(min_value=0, max_value=bitwidth - 1)


def design_ids(ids=None) -> st.SearchStrategy:
    """A design id drawn from ``ids`` (default: the whole registry)."""
    return st.sampled_from(list(ids) if ids is not None else ALL_IDS)


#: operand widths the functional models and netlists both support
bitwidths = st.sampled_from([4, 8, 16])

# the module-level single-width strategies the property tests historically
# used; kept for drop-in reuse
operand = operands(16)
exponent = exponents(16)
