"""Tests for the gate-level substrate: cells, netlist builder, simulator."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cells import CELLS, cell
from repro.logic.netlist import CONST0, CONST1, Netlist
from repro.logic.sim import bus_to_int, evaluate_words, int_to_bus, simulate

TRUTH = {
    "INV": lambda a: not a,
    "BUF": lambda a: a,
    "AND2": lambda a, b: a and b,
    "OR2": lambda a, b: a or b,
    "NAND2": lambda a, b: not (a and b),
    "NOR2": lambda a, b: not (a or b),
    "XOR2": lambda a, b: a != b,
    "XNOR2": lambda a, b: a == b,
    "ANDN2": lambda a, b: a and not b,
    "ORN2": lambda a, b: a or not b,
    "MUX2": lambda d0, d1, s: d1 if s else d0,
    "MAJ3": lambda a, b, c: (a + b + c) >= 2,
    "XOR3": lambda a, b, c: (a + b + c) % 2 == 1,
}


class TestCells:
    @pytest.mark.parametrize("name", sorted(CELLS))
    def test_function_matches_truth_table(self, name):
        c = cell(name)
        for combo in itertools.product([False, True], repeat=c.inputs):
            arrays = [np.array([v]) for v in combo]
            assert bool(c.evaluate(*arrays)[0]) == bool(TRUTH[name](*combo))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            cell("AND2").evaluate(np.array([True]))

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            cell("NAND17")

    def test_energy_and_leakage_track_area(self):
        inv, xor3 = cell("INV"), cell("XOR3")
        assert xor3.energy > inv.energy
        assert xor3.leakage > inv.leakage


class TestBuilder:
    def test_use_before_drive_rejected(self):
        nl = Netlist("t")
        a = nl.new_input("a")
        with pytest.raises(ValueError):
            nl.add("AND2", a, 999)

    def test_wrong_input_count(self):
        nl = Netlist("t")
        a = nl.new_input("a")
        with pytest.raises(ValueError):
            nl.add("AND2", a)

    def test_structural_sharing(self):
        nl = Netlist("t")
        a, b = nl.new_input("a"), nl.new_input("b")
        first = nl.add("XOR2", a, b)
        second = nl.add("XOR2", a, b)
        assert first == second
        assert nl.gate_count == 1

    def test_undriven_output_rejected(self):
        nl = Netlist("t")
        with pytest.raises(ValueError):
            nl.set_outputs([1234])

    @pytest.mark.parametrize(
        "cell_name",
        ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2", "ANDN2", "ORN2"],
    )
    def test_constant_folding_two_input(self, cell_name):
        # every (net, const) combination must fold to the truth-table value
        for const_net, const_val in ((CONST0, False), (CONST1, True)):
            for position in (0, 1):
                nl = Netlist("t")
                a = nl.new_input("a")
                inputs = [a, const_net] if position else [const_net, a]
                out = nl.add(cell_name, *inputs)
                nl.set_outputs([out])
                for a_val in (False, True):
                    waves = simulate(nl, {a: np.array([a_val])})
                    combo = (
                        (a_val, const_val) if position else (const_val, a_val)
                    )
                    assert bool(waves[out][0]) == bool(TRUTH[cell_name](*combo))

    @pytest.mark.parametrize("cell_name", ["XOR3", "MAJ3"])
    def test_constant_folding_three_input(self, cell_name):
        for const_pattern in itertools.product([None, False, True], repeat=3):
            if all(v is None for v in const_pattern):
                continue
            nl = Netlist("t")
            live_inputs = {}
            nets = []
            for index, const in enumerate(const_pattern):
                if const is None:
                    net = nl.new_input(f"in{index}")
                    live_inputs[index] = net
                    nets.append(net)
                else:
                    nets.append(CONST1 if const else CONST0)
            out = nl.add(cell_name, *nets)
            nl.set_outputs([out])
            for live_values in itertools.product(
                [False, True], repeat=len(live_inputs)
            ):
                stimulus = {
                    net: np.array([value])
                    for net, value in zip(live_inputs.values(), live_values)
                }
                waves = simulate(nl, stimulus)
                combo = []
                live_iter = iter(live_values)
                for const in const_pattern:
                    combo.append(next(live_iter) if const is None else const)
                assert bool(waves[out][0]) == bool(TRUTH[cell_name](*combo))

    def test_mux_folding(self):
        nl = Netlist("t")
        a, s = nl.new_input("a"), nl.new_input("s")
        assert nl.add("MUX2", a, a, s) == a  # equal branches
        assert nl.add("MUX2", CONST0, CONST1, s) == s  # 0/1 -> select
        assert nl.gate_count == 0

    def test_same_input_folds(self):
        nl = Netlist("t")
        a = nl.new_input("a")
        assert nl.add("AND2", a, a) == a
        assert nl.add("XOR2", a, a) == CONST0


class TestPrune:
    def test_removes_dead_logic_preserving_function(self):
        nl = Netlist("t")
        a, b = nl.new_input("a"), nl.new_input("b")
        live = nl.add("AND2", a, b)
        nl.add("XOR2", a, b)  # dead
        nl.set_outputs([live])
        removed = nl.prune()
        assert removed == 1
        assert nl.gate_count == 1
        waves = simulate(nl, {a: np.array([True]), b: np.array([True])})
        assert bool(waves[live][0])

    def test_requires_outputs(self):
        nl = Netlist("t")
        nl.new_input("a")
        with pytest.raises(ValueError):
            nl.prune()

    def test_cache_does_not_resurrect_pruned_gates(self):
        nl = Netlist("t")
        a, b = nl.new_input("a"), nl.new_input("b")
        live = nl.add("AND2", a, b)
        nl.add("XOR2", a, b)
        nl.set_outputs([live])
        nl.prune()
        again = nl.add("XOR2", a, b)  # must be re-created, not a stale handle
        nl.set_outputs([live, again])
        waves = simulate(nl, {a: np.array([True]), b: np.array([False])})
        assert bool(waves[again][0])


class TestSimulator:
    def test_missing_stimulus(self):
        nl = Netlist("t")
        a, b = nl.new_input("a"), nl.new_input("b")
        nl.set_outputs([nl.add("AND2", a, b)])
        with pytest.raises(ValueError):
            simulate(nl, {a: np.array([True])})

    def test_shape_mismatch(self):
        nl = Netlist("t")
        a, b = nl.new_input("a"), nl.new_input("b")
        nl.set_outputs([nl.add("AND2", a, b)])
        with pytest.raises(ValueError):
            simulate(nl, {a: np.zeros(2, bool), b: np.zeros(3, bool)})

    def test_depth(self):
        nl = Netlist("t")
        a, b, c = (nl.new_input(n) for n in "abc")
        x = nl.add("AND2", a, b)
        y = nl.add("OR2", x, c)
        nl.set_outputs([y])
        assert nl.depth() == 2

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 12) - 1), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_bus_roundtrip(self, values):
        array = np.array(values)
        assert np.array_equal(bus_to_int(int_to_bus(array, 12)), array)

    def test_evaluate_words(self):
        nl = Netlist("and4")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        nl.set_outputs([nl.add("AND2", x, y) for x, y in zip(a, b)])
        got = evaluate_words(nl, [a, b], [np.array([0b1100]), np.array([0b1010])])
        assert int(got[0]) == 0b1000

    def test_evaluate_words_arity(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 2)
        nl.set_outputs(a)
        with pytest.raises(ValueError):
            evaluate_words(nl, [a], [np.array([1]), np.array([2])])


class TestBusWidthOverflow:
    """Regression: widths >= 64 used to wrap silently in int64 space."""

    def test_bus_to_int_rejects_wide_bus(self):
        bits = np.ones((2, 64), dtype=bool)
        with pytest.raises(ValueError, match="exceeds 63"):
            bus_to_int(bits)

    def test_bus_to_int_rejects_much_wider_bus(self):
        # the original failure mode: 70 all-one bits summed to -1
        bits = np.ones((1, 70), dtype=bool)
        with pytest.raises(ValueError, match="silently overflow"):
            bus_to_int(bits)

    def test_int_to_bus_rejects_wide_width(self):
        with pytest.raises(ValueError, match="exceeds 63"):
            int_to_bus(np.array([1, 2, 3]), 64)

    def test_width_63_is_exact(self):
        # the widest representable bus: top usable weight is 2**62
        value = np.array([(1 << 63) - 1])  # 63 ones
        bits = int_to_bus(value, 63)
        assert bits.all()
        assert np.array_equal(bus_to_int(bits), value)

    def test_output_buses_of_31_bit_models_fit(self):
        # 2N-bit products of the widest supported multiplier stay legal
        from repro.logic.sim import MAX_BUS_WIDTH

        assert 2 * 31 <= MAX_BUS_WIDTH


class TestWidthInvariants:
    """The int64 substrate invariant and bus-value validation.

    Regression for two silent-wrap bugs: out-of-range values used to
    drop their high bits in ``int_to_bus``, and negative values wrapped
    to two's-complement bit patterns.  Plus the cross-module pin the
    doc comments in ``repro.logic.sim`` and ``repro.multipliers.base``
    point at: ``2 * MAX_BITWIDTH + 1 == MAX_BUS_WIDTH``.
    """

    def test_model_and_bus_limits_agree(self):
        # an N-bit model's worst product needs 2N+1 bits (REALM overflow);
        # the widest model must exactly exhaust the bus substrate
        from repro.logic.sim import MAX_BUS_WIDTH
        from repro.multipliers.base import Multiplier

        assert 2 * Multiplier.MAX_BITWIDTH + 1 == MAX_BUS_WIDTH

    def test_int_to_bus_rejects_oversized_value(self):
        # regression: 16 on a 4-bit bus used to become 0b0000 silently
        with pytest.raises(ValueError, match="outside"):
            int_to_bus(np.array([3, 16]), 4)

    def test_int_to_bus_rejects_value_at_limit(self):
        with pytest.raises(ValueError, match=r"outside \[0, 2\*\*8\)"):
            int_to_bus(np.array([256]), 8)

    def test_int_to_bus_rejects_negative_value(self):
        # regression: -1 used to drive an all-ones two's-complement bus
        with pytest.raises(ValueError, match="outside"):
            int_to_bus(np.array([0, -1, 3]), 4)

    def test_int_to_bus_accepts_full_range(self):
        values = np.array([0, 1, 255])
        assert np.array_equal(bus_to_int(int_to_bus(values, 8)), values)

    def test_int_to_bus_empty_is_fine(self):
        bits = int_to_bus(np.array([], dtype=np.int64), 4)
        assert bits.shape == (0, 4)

    def test_evaluate_words_propagates_value_validation(self):
        nl = Netlist("t")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        nl.set_outputs([nl.add("AND2", x, y) for x, y in zip(a, b)])
        with pytest.raises(ValueError, match="outside"):
            evaluate_words(nl, [a, b], [np.array([99]), np.array([1])])
