"""Chaos-harness tests: injected worker faults end well or fail loudly.

Every scenario here must terminate in one of exactly two ways:

* a result **bit-identical** to an undisturbed serial run, or
* a structured :class:`BatchFailure` naming the failed batch —

never a silently wrong metric and never a bare ``BrokenProcessPool``.
Faults are injected through :mod:`repro.analysis.chaos`: in-process plans
for serial runs, the ``REPRO_CHAOS`` environment variable (inherited by
pool workers) for parallel ones.
"""

from __future__ import annotations

import pytest

from repro.analysis import chaos
from repro.analysis.chaos import CHAOS_ENV, ChaosPlan, FaultSpec
from repro.analysis.designspace import sweep
from repro.analysis.montecarlo import characterize
from repro.analysis.parallel import BLOCK
from repro.analysis.runtime import BatchFailure, ResiliencePolicy
from repro.multipliers.mitchell import MitchellMultiplier
from repro.multipliers.registry import build

SAMPLES = 2 * BLOCK  # two blocks, one per batch
CHUNK = BLOCK
SEED = 7

#: no real sleeping between retries
FAST = dict(sleep=lambda s: None, jitter=lambda low, high: low)


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    """Every test starts and ends with no active fault plan."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


@pytest.fixture()
def calm():
    return MitchellMultiplier()


@pytest.fixture()
def reference(calm):
    return characterize(calm, samples=SAMPLES, seed=SEED, chunk=CHUNK, cache=False)


def run(calm, *, workers=None, policy=None, progress=None, **kwargs):
    return characterize(
        calm,
        samples=SAMPLES,
        seed=SEED,
        chunk=CHUNK,
        cache=False,
        workers=workers,
        policy=policy,
        progress=progress,
        **kwargs,
    )


class TestHarness:
    def test_wrap_is_identity_when_inactive(self):
        task = object()
        assert chaos.wrap(task) is task

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="explode", block=0)
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="raise", block=0, times=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="hang", block=0, seconds=-1.0)

    def test_plan_round_trips_through_env(self, tmp_path, monkeypatch):
        plan = ChaosPlan(
            (FaultSpec(kind="raise", block=1, design="cALM", times=2),),
            str(tmp_path),
        )
        monkeypatch.setenv(CHAOS_ENV, plan.to_json())
        assert chaos.active_plan() == plan

    def test_claim_counts_firings_exactly(self, tmp_path):
        spec = FaultSpec(kind="raise", block=0, times=2)
        plan = ChaosPlan((spec,), str(tmp_path))
        assert [plan.claim(0, spec) for _ in range(4)] == [True, True, False, False]


class TestSerialFaults:
    def test_raise_is_retried_bit_identical(self, tmp_path, calm, reference):
        chaos.install([FaultSpec(kind="raise", block=1, times=1)], tmp_path)
        events = []
        result = run(
            calm, policy=ResiliencePolicy(max_retries=2, **FAST),
            progress=events.append,
        )
        assert result == reference
        retries = [e for e in events if e.get("event") == "retry"]
        assert len(retries) == 1 and retries[0]["batch"] == 1

    def test_raise_exhaustion_is_structured(self, tmp_path, calm):
        chaos.install([FaultSpec(kind="raise", block=1, times=99)], tmp_path)
        with pytest.raises(BatchFailure) as excinfo:
            run(calm, policy=ResiliencePolicy(max_retries=0, **FAST))
        assert excinfo.value.blocks == [(1, BLOCK)]
        assert "blocks[1..1]" in str(excinfo.value)
        assert "injected fault" in str(excinfo.value)

    def test_corrupt_result_is_caught_and_retried(self, tmp_path, calm, reference):
        chaos.install([FaultSpec(kind="corrupt", block=0, times=1)], tmp_path)
        events = []
        result = run(
            calm, policy=ResiliencePolicy(max_retries=2, **FAST),
            progress=events.append,
        )
        assert result == reference
        retries = [e for e in events if e.get("event") == "retry"]
        assert len(retries) == 1
        # the validation layer, not the task, flagged the corruption
        assert "block 0" in retries[0]["cause"]
        assert "expected" in retries[0]["cause"]

    def test_corrupt_never_merges_silently(self, tmp_path, calm):
        chaos.install([FaultSpec(kind="corrupt", block=0, times=99)], tmp_path)
        with pytest.raises(BatchFailure) as excinfo:
            run(calm, policy=ResiliencePolicy(max_retries=1, **FAST))
        assert excinfo.value.blocks[0][0] == 0


class TestParallelFaults:
    """Pool-path faults, injected through the environment so forked
    workers inherit the plan."""

    def _arm(self, monkeypatch, tmp_path, *specs):
        plan = ChaosPlan(tuple(specs), str(tmp_path))
        monkeypatch.setenv(CHAOS_ENV, plan.to_json())

    def test_crashed_worker_rebuilds_pool(self, tmp_path, monkeypatch, calm, reference):
        self._arm(monkeypatch, tmp_path, FaultSpec(kind="crash", block=0, times=1))
        events = []
        result = run(
            calm, workers=2, policy=ResiliencePolicy(max_retries=2, **FAST),
            progress=events.append,
        )
        assert result == reference
        assert any(e.get("event") == "pool-rebuild" for e in events)

    def test_persistent_crashes_degrade_to_serial(
        self, tmp_path, monkeypatch, calm, reference
    ):
        # every pooled attempt crashes; the crash fault only fires inside
        # worker processes, so degraded in-process execution completes
        self._arm(monkeypatch, tmp_path, FaultSpec(kind="crash", block=0, times=99))
        events = []
        result = run(
            calm,
            workers=2,
            policy=ResiliencePolicy(max_retries=0, max_pool_rebuilds=1, **FAST),
            progress=events.append,
        )
        assert result == reference
        assert any(e.get("event") == "degraded" for e in events)

    def test_hung_worker_times_out_and_recovers(
        self, tmp_path, monkeypatch, calm, reference
    ):
        self._arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="hang", block=1, times=1, seconds=5.0),
        )
        events = []
        result = run(
            calm,
            workers=2,
            policy=ResiliencePolicy(max_retries=2, batch_timeout=0.5, **FAST),
            progress=events.append,
        )
        assert result == reference
        assert any(e.get("event") == "pool-rebuild" for e in events)

    def test_hung_worker_exhausts_into_structured_error(
        self, tmp_path, monkeypatch, calm
    ):
        self._arm(
            monkeypatch, tmp_path,
            FaultSpec(kind="hang", block=1, times=99, seconds=5.0),
        )
        with pytest.raises(BatchFailure) as excinfo:
            run(
                calm,
                workers=2,
                policy=ResiliencePolicy(
                    max_retries=0, batch_timeout=0.3, max_pool_rebuilds=99, **FAST
                ),
            )
        assert excinfo.value.blocks == [(1, BLOCK)]
        assert "no result within 0.3s" in str(excinfo.value)


class BlockCounter:
    """Counting wrapper around ``uniform_task`` for resume accounting."""

    def __init__(self, inner):
        self.inner = inner
        self.executed: list[tuple[str, int]] = []

    def __call__(self, multiplier, seed, blocks):
        self.executed.extend((multiplier.name, index) for index, _ in blocks)
        return self.inner(multiplier, seed, blocks)


@pytest.fixture()
def count_blocks(monkeypatch):
    """Count every block computed by serial characterize runs."""
    from repro.analysis import montecarlo, parallel

    counter = BlockCounter(parallel.uniform_task)
    monkeypatch.setattr(montecarlo, "uniform_task", counter)
    return counter


class TestCheckpointResume:
    def test_characterize_resumes_only_unfinished_blocks(
        self, tmp_path, calm, count_blocks
    ):
        samples = 4 * BLOCK
        reference = characterize(
            calm, samples=samples, seed=SEED, chunk=CHUNK, cache=False
        )
        count_blocks.executed.clear()

        chaos.install(
            [FaultSpec(kind="raise", block=2, times=99)], tmp_path / "chaos"
        )
        with pytest.raises(BatchFailure):
            characterize(
                calm, samples=samples, seed=SEED, chunk=CHUNK,
                cache=tmp_path, checkpoint=True,
                policy=ResiliencePolicy(max_retries=0, **FAST),
            )
        assert count_blocks.executed == [(calm.name, 0), (calm.name, 1)]

        chaos.uninstall()
        count_blocks.executed.clear()
        resumed = characterize(
            calm, samples=samples, seed=SEED, chunk=CHUNK,
            cache=tmp_path, checkpoint=True, resume=True,
        )
        assert count_blocks.executed == [(calm.name, 2), (calm.name, 3)]
        assert resumed == reference

    def test_sweep_resumes_from_checkpoints(self, tmp_path, count_blocks):
        """ISSUE acceptance: an interrupted ``designspace.sweep`` resumed
        with ``resume=True`` recomputes only unfinished blocks/designs."""
        ids = ("calm", "drum-k8", "realm4-t9")
        samples = 4 * BLOCK
        reference = {
            p.name: p.metrics
            for p in sweep(ids, samples=samples, chunk=CHUNK, cache=False)
        }
        count_blocks.executed.clear()

        # interrupt the sweep on its second design's third block
        chaos.install(
            [FaultSpec(kind="raise", block=2, times=99, design=build("drum-k8").name)],
            tmp_path / "chaos",
        )
        with pytest.raises(BatchFailure) as excinfo:
            sweep(
                ids, samples=samples, chunk=CHUNK, cache=tmp_path,
                checkpoint=True,
                policy=ResiliencePolicy(max_retries=0, **FAST),
            )
        assert "blocks[2..2]" in str(excinfo.value)
        # design 1 finished (4 blocks), design 2 got through blocks 0..1
        assert len(count_blocks.executed) == 6

        chaos.uninstall()
        count_blocks.executed.clear()
        resumed = {
            p.name: p.metrics
            for p in sweep(
                ids, samples=samples, chunk=CHUNK, cache=tmp_path,
                checkpoint=True, resume=True,
            )
        }
        # calm is a cache hit; drum resumes blocks 2..3 from its
        # checkpoint; realm4 never started and runs all 4 blocks
        drum, realm = build("drum-k8").name, build("realm4-t9").name
        assert count_blocks.executed == [
            (drum, 2), (drum, 3), (realm, 0), (realm, 1), (realm, 2), (realm, 3),
        ]
        assert resumed == reference
