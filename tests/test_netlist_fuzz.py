"""Property-based fuzzing of the logic substrate.

Hypothesis generates random feed-forward netlists; every generated design
must survive the substrate's full round trips — simulation vs. a direct
Python evaluation oracle, JSON serialization, Verilog re-interpretation,
pruning, and pipelining — without changing function.  This is the
substrate-wide contract the hand-written designs rely on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cells import CELLS
from repro.logic.netlist import CONST0, CONST1, Netlist
from repro.logic.pipeline import pipeline_netlist, simulate_pipeline
from repro.logic.serialize import from_json, to_json
from repro.logic.sim import simulate

_CELL_NAMES = sorted(CELLS)


@st.composite
def random_netlists(draw):
    """A random DAG of 1-25 gates over 2-6 primary inputs."""
    input_count = draw(st.integers(min_value=2, max_value=6))
    gate_count = draw(st.integers(min_value=1, max_value=25))
    nl = Netlist("fuzz")
    nets = [nl.new_input(f"in{i}") for i in range(input_count)]
    nets += [CONST0, CONST1]
    plan = []  # mirror of the construction for the oracle
    for g in range(gate_count):
        cell_name = draw(st.sampled_from(_CELL_NAMES))
        arity = CELLS[cell_name].inputs
        chosen = [
            nets[draw(st.integers(min_value=0, max_value=len(nets) - 1))]
            for _ in range(arity)
        ]
        out = nl.add(cell_name, *chosen)
        plan.append((cell_name, tuple(chosen), out))
        nets.append(out)
    # outputs: a random non-empty subset of driven nets
    output_count = draw(st.integers(min_value=1, max_value=min(6, len(nets))))
    outputs = [
        nets[draw(st.integers(min_value=0, max_value=len(nets) - 1))]
        for _ in range(output_count)
    ]
    nl.set_outputs(outputs)
    return nl, plan


def _oracle(plan, inputs, stimulus):
    """Direct Python evaluation of the construction plan."""
    values = {CONST0: False, CONST1: True}
    values.update(stimulus)
    for cell_name, chosen, out in plan:
        operands = [np.array([values[i]]) for i in chosen]
        values[out] = bool(CELLS[cell_name].evaluate(*operands)[0])
    return values


@given(random_netlists(), st.integers(min_value=0, max_value=(1 << 12) - 1))
@settings(max_examples=60, deadline=None)
def test_simulation_matches_oracle(netlist_plan, pattern):
    netlist, plan = netlist_plan
    stimulus_bits = {
        net: bool((pattern >> position) & 1)
        for position, net in enumerate(netlist.inputs)
    }
    stimulus = {net: np.array([bit]) for net, bit in stimulus_bits.items()}
    waves = simulate(netlist, stimulus)
    oracle = _oracle(plan, netlist.inputs, stimulus_bits)
    for net in netlist.outputs:
        if net in (CONST0, CONST1):
            continue
        assert bool(waves[net][0]) == oracle[net]


@given(random_netlists())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_preserves_function(netlist_plan):
    netlist, _ = netlist_plan
    restored = from_json(to_json(netlist))
    rng = np.random.default_rng(17)
    stimulus = {
        net: rng.random(32) < 0.5 for net in netlist.inputs
    }
    original_waves = simulate(netlist, stimulus)
    restored_waves = simulate(restored, stimulus)
    for net in netlist.outputs:
        if net in (CONST0, CONST1):
            continue
        assert np.array_equal(original_waves[net], restored_waves[net])


@given(random_netlists())
@settings(max_examples=40, deadline=None)
def test_prune_preserves_outputs(netlist_plan):
    netlist, _ = netlist_plan
    rng = np.random.default_rng(18)
    stimulus = {net: rng.random(16) < 0.5 for net in netlist.inputs}
    before = simulate(netlist, stimulus)
    reference = {
        net: before[net]
        for net in netlist.outputs
        if net not in (CONST0, CONST1)
    }
    netlist.prune()
    after = simulate(netlist, stimulus)
    for net, expected in reference.items():
        assert np.array_equal(after[net], expected)


@given(random_netlists(), st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_pipelining_preserves_function(netlist_plan, stages):
    netlist, _ = netlist_plan
    netlist.prune()
    if not netlist.gates:
        return
    pipe = pipeline_netlist(netlist, stages)
    rng = np.random.default_rng(19)
    cycles = stages + 4
    width = len(netlist.inputs)
    values = rng.integers(0, 1 << width, cycles)
    streamed = simulate_pipeline(pipe, [netlist.inputs], [values])

    from repro.logic.sim import evaluate_words

    reference = evaluate_words(netlist, [netlist.inputs], [values])
    latency = pipe.latency_cycles
    assert np.array_equal(streamed[latency:], reference[: cycles - latency])
