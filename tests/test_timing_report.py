"""Tests for static timing analysis and the synthesis report."""

from __future__ import annotations

import pytest

from repro.circuits.catalog import netlist_for
from repro.circuits.realm_rtl import realm_netlist
from repro.logic.netlist import Netlist
from repro.synth.report import design_report
from repro.synth.timing import CELL_DELAY_PS, analyze_timing


class TestTiming:
    def test_single_gate(self):
        nl = Netlist("t")
        a, b = nl.new_input("a"), nl.new_input("b")
        nl.set_outputs([nl.add("AND2", a, b)])
        report = analyze_timing(nl)
        assert report.critical_path_ps == pytest.approx(CELL_DELAY_PS["AND2"])
        assert report.levels == 1
        assert report.critical_path_cells == ("AND2",)
        assert report.meets_timing

    def test_chain_accumulates(self):
        nl = Netlist("t")
        a = nl.new_input("a")
        signal = a
        for index in range(10):
            # alternate inputs to defeat the same-input folding
            other = nl.new_input(f"b{index}")
            signal = nl.add("XOR2", signal, other)
        nl.set_outputs([signal])
        report = analyze_timing(nl)
        assert report.levels == 10
        assert report.critical_path_ps == pytest.approx(10 * CELL_DELAY_PS["XOR2"])

    def test_wallace_violates_1ghz_unit_sized(self):
        # the DESIGN.md discussion: the deep accurate multiplier cannot
        # meet 1 GHz without sizing, which is where the paper's area
        # reference gets its extra weight
        report = analyze_timing(netlist_for("accurate"))
        assert not report.meets_timing
        assert report.max_frequency_ghz < 1.0

    def test_truncation_shortens_realm_path(self):
        slow = analyze_timing(realm_netlist(16, m=8, t=0))
        fast = analyze_timing(realm_netlist(16, m=8, t=9))
        assert fast.critical_path_ps < slow.critical_path_ps

    def test_empty_netlist(self):
        nl = Netlist("t")
        a = nl.new_input("a")
        nl.set_outputs([a])
        report = analyze_timing(nl)
        assert report.critical_path_ps == 0.0
        assert report.max_frequency_ghz == float("inf")

    def test_invalid_clock(self):
        nl = Netlist("t")
        a = nl.new_input("a")
        nl.set_outputs([a])
        with pytest.raises(ValueError):
            analyze_timing(nl, clock_ps=0)

    def test_path_trace_consistent(self):
        report = analyze_timing(netlist_for("calm"))
        assert len(report.critical_path_cells) == report.levels
        total = sum(CELL_DELAY_PS[c] for c in report.critical_path_cells)
        assert total == pytest.approx(report.critical_path_ps)


class TestDesignReport:
    def test_contains_all_sections(self):
        text = design_report(realm_netlist(16, m=4, t=2))
        for marker in ("Design:", "Area", "Power", "Timing", "critical path"):
            assert marker in text

    def test_cell_shares_sum_sensibly(self):
        text = design_report(netlist_for("ssm-m8"))
        shares = [
            float(line.split("%")[0].split()[-1])
            for line in text.splitlines()
            if "% of cell area" in line
        ]
        assert sum(shares) == pytest.approx(100.0, abs=1.0)
