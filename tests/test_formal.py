"""Tests for the formal layer: encoders, equivalence, certified bounds.

The load-bearing claim is the brute-force cross-check: for ≤8-bit
designs the certified worst case ``(a*, b*, err*)`` must equal the
maximum over the full ``2^2N`` operand grid, computed here by an
independent exact scan (integer cross-multiplication, no floats).  A
seeded slice of designs runs in tier-1; the full registry sweep is
``nightly``-marked, matching ``test_rtl_equivalence.py``.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis import chaos
from repro.analysis.exhaustive import exhaustive_metrics
from repro.conformance.fuzz import shrink_pair
from repro.conformance.oracles import LAYERS, DifferentialOracle, resolve_design
from repro.formal import (
    UnsupportedDesignError,
    certify_worst_error,
    encode_model,
    load_certificate,
    prove_equivalence,
    save_certificate,
)
from repro.multipliers.registry import REGISTRY

from tests.strategies import corner_operands

# tier-1 slice: one design per certification route (log-family interval,
# LUT-corrected REALM, truncation, product-form ratio, exact baseline,
# plus the two symbolic-only new families: compensated scaling and
# OR-column truncation)
SLICE_DESIGNS = [
    "realm8-t2", "mbm-t2", "calm", "drum-k5", "accurate",
    "scaletrim-t4-c2", "dnnco-l6",
]


def brute_force_extremes(model):
    """Exact error extremes over the full positive operand grid.

    Independent of the formal sweep: comparisons use integer
    cross-multiplication, and the lexicographically first ``(a, b)``
    wins ties — the same canonical witness the certificates promise.
    """
    values = np.arange(1, 1 << model.bitwidth, dtype=np.int64)
    a = np.repeat(values, values.size)
    b = np.tile(values, values.size)
    exact = a * b
    num = (np.asarray(model.multiply(a, b), dtype=np.int64) - exact).tolist()
    den = exact.tolist()
    pairs = list(zip(a.tolist(), b.tolist()))
    extremes = {}
    for direction, keep in (
        ("min", lambda n1, d1, n2, d2: n1 * d2 < n2 * d1),
        ("max", lambda n1, d1, n2, d2: n1 * d2 > n2 * d1),
    ):
        best = 0
        for i in range(1, len(num)):
            if keep(num[i], den[i], num[best], den[best]):
                best = i
        extremes[direction] = (Fraction(num[best], den[best]), *pairs[best])
    return extremes


def assert_matches_brute_force(design: str, bitwidth: int = 8) -> None:
    _, model, _, _ = resolve_design(design, bitwidth)
    bounds = certify_worst_error(design, bitwidth)
    assert bounds.exact, f"{design}: certificate not exact"
    assert bounds.replayed, f"{design}: witness failed model replay"
    reference = brute_force_extremes(model)
    for cert, direction in ((bounds.peak_min, "min"), (bounds.peak_max, "max")):
        want_err, want_a, want_b = reference[direction]
        assert cert.as_fraction() == want_err, f"{design} {direction}"
        assert (cert.a, cert.b) == (want_a, want_b), f"{design} {direction}"
        assert Fraction(cert.witness_num, cert.witness_den) == want_err


class TestCertifiedVsBruteForce:
    @pytest.mark.parametrize("design", SLICE_DESIGNS)
    def test_slice_matches_brute_force(self, design):
        assert_matches_brute_force(design)

    @pytest.mark.nightly
    @pytest.mark.skipif(
        not os.environ.get("REPRO_NIGHTLY"),
        reason="full-registry sweep runs nightly (set REPRO_NIGHTLY=1)",
    )
    @pytest.mark.parametrize("design", sorted(REGISTRY))
    def test_every_eightbit_design_matches_brute_force(self, design):
        try:
            resolve_design(design, 8)
        except ValueError as exc:
            pytest.skip(f"not buildable at 8 bits: {exc}")
        assert_matches_brute_force(design)

    def test_interval_route_agrees_with_sweep(self):
        # the wide-operand engines, forced at a sweepable width so their
        # answers can be checked against the exhaustive route
        for design in ("realm8-t2", "mbm-t2", "calm", "drum-k5", "accurate"):
            sweep = certify_worst_error(design, 8, method="sweep")
            interval = certify_worst_error(design, 8, method="interval")
            assert interval.exact, design
            for side in ("peak_min", "peak_max"):
                got = getattr(interval, side)
                want = getattr(sweep, side)
                assert got.as_fraction() == want.as_fraction(), (design, side)

    def test_sixteen_bit_bounds_are_sound(self):
        # pure-python at 16 bits gives honest outer bounds, not exact
        bounds = certify_worst_error("realm-16-m4-q3", method="interval",
                                     box_budget=2000)
        lo = bounds.peak_min
        hi = bounds.peak_max
        assert lo.as_fraction() <= Fraction(lo.witness_num, lo.witness_den)
        assert hi.as_fraction() >= Fraction(hi.witness_num, hi.witness_den)
        assert bounds.method in ("interval-bb", "ratio-exact")


class TestCertifiedDominatesSampling:
    BOUNDS = None

    @classmethod
    def bounds(cls):
        if cls.BOUNDS is None:
            cls.BOUNDS = certify_worst_error("realm8-t2", 8)
        return cls.BOUNDS

    @given(a=corner_operands(8), b=corner_operands(8))
    @settings(max_examples=300, deadline=None)
    def test_certified_extremes_contain_every_sample(self, a, b):
        if a == 0 or b == 0:
            return  # relative error undefined
        bounds = self.bounds()
        _, model, _, _ = resolve_design("realm8-t2", 8)
        err = Fraction(int(model.multiply(a, b)) - a * b, a * b)
        assert bounds.peak_min.as_fraction() <= err
        assert err <= bounds.peak_max.as_fraction()


class TestEquivalence:
    def test_realm_eightbit_all_legs_discharged(self):
        result = prove_equivalence("realm8-t2", 8)
        assert not result.refuted
        assert result.proved
        legs = {leg.leg: leg for leg in result.legs}
        assert legs["formula~model"].status == "proved"
        assert legs["model~kernel"].status == "proved"

    def test_adhoc_spec_proves(self):
        result = prove_equivalence("realm-8-m4-q5")
        assert result.proved, [leg.detail for leg in result.legs]

    def test_unsupported_design_raises(self):
        with pytest.raises(UnsupportedDesignError):
            encode_model(resolve_design("am1-nb13", 16)[1], "am1-nb13")

    @pytest.mark.parametrize("design", ["scaletrim-t4-c2", "dnnco-l6"])
    def test_new_families_eightbit_all_legs_discharged(self, design):
        result = prove_equivalence(design, 8)
        assert not result.refuted
        assert result.proved, [leg.detail for leg in result.legs]
        legs = {leg.leg: leg for leg in result.legs}
        assert legs["formula~model"].status == "proved"
        assert legs["model~kernel"].status == "proved"

    @pytest.mark.parametrize("design", ["scaletrim-t4-c2", "dnnco-l6"])
    def test_new_families_sixteen_bit_proves_or_skips(self, design):
        # at 16 bits the exhaustive sweep is out of reach and the
        # interval engines don't model these families; with an SMT
        # backend the certificate is exact, without one the failure must
        # be an honest UnsupportedDesignError, never a wrong bound
        try:
            bounds = certify_worst_error(design, 16)
        except UnsupportedDesignError as exc:
            assert str(exc)  # carries a reason, not a bare raise
            pytest.skip(f"16-bit certification unavailable: {exc}")
        assert bounds.replayed


class TestFormalConformanceLayer:
    def test_formal_is_a_registered_layer(self):
        assert "formal" in LAYERS

    def test_chaos_corruption_refuted_with_shrunk_witness(self, tmp_path):
        spec = chaos.FaultSpec(
            kind="corrupt", block=0, design="realm16-t0", times=1 << 30
        )
        chaos.install([spec], tmp_path / "claims")
        try:
            oracle = DifferentialOracle(
                "realm16-t0", layers=("model", "formal")
            )
            rng = np.random.default_rng(0)
            a = rng.integers(0, 1 << 16, 256, dtype=np.int64)
            b = rng.integers(0, 1 << 16, 256, dtype=np.int64)
            records, total = oracle.evaluate(a, b)
            assert total > 0
            divergence = next(
                r for r in records if r.kind == "layer" and r.name == "formal"
            )
            witness = shrink_pair(
                lambda x, y: oracle.check_pair("layer", "formal", x, y),
                divergence.a,
                divergence.b,
            )
            # the corruption (+1 on nonzero products) reduces to the
            # smallest nonzero pair
            assert witness == (1, 1)
        finally:
            chaos.uninstall()

    def test_formal_layer_skips_unencodable_designs(self):
        oracle = DifferentialOracle("am1-nb13", layers=("model", "formal"))
        assert "formal" in oracle.skipped_layers


class TestCertificateStore:
    def test_roundtrip(self, tmp_path):
        bounds = certify_worst_error("calm", 6)
        path = save_certificate(bounds.to_payload(), tmp_path)
        assert path is not None and path.exists()
        loaded = load_certificate("calm", 6, "worst-case-error", tmp_path)
        assert loaded == bounds.to_payload()

    def test_kind_mismatch_returns_none(self, tmp_path):
        bounds = certify_worst_error("calm", 6)
        save_certificate(bounds.to_payload(), tmp_path)
        assert load_certificate("calm", 6, "equivalence", tmp_path) is None

    def test_corrupt_certificate_returns_none(self, tmp_path):
        bounds = certify_worst_error("calm", 6)
        path = save_certificate(bounds.to_payload(), tmp_path)
        path.write_text("{broken")
        assert load_certificate("calm", 6, "worst-case-error", tmp_path) is None

    def test_disabled_cache_stores_nothing(self):
        bounds = certify_worst_error("calm", 6)
        assert save_certificate(bounds.to_payload(), False) is None


class TestPeakCertified:
    def test_full_range_exhaustive_sweep_certifies(self):
        _, model, _, _ = resolve_design("realm-8-m4-q5", None)
        metrics = exhaustive_metrics(model)
        assert metrics.peak_certified == (metrics.peak_min, metrics.peak_max)
        # row() and the design-space peak prefer the certified values
        assert metrics.row()[2:4] == metrics.peak_certified
        assert "certified peak" in str(metrics)

    def test_partial_range_sweep_does_not_certify(self):
        _, model, _, _ = resolve_design("realm-8-m4-q5", None)
        assert exhaustive_metrics(model, 32, 255).peak_certified is None

    def test_cache_roundtrips_and_tolerates_old_entries(self, tmp_path):
        from repro.analysis.cache import load_metrics, store_metrics
        from repro.analysis.metrics import ErrorMetrics

        metrics = ErrorMetrics(
            bias=0.1, mean_error=1.0, peak_min=-2.0, peak_max=3.0,
            variance=0.5, rms=1.1, nmed=0.2, samples=100,
            peak_certified=(-2.5, 3.5),
        )
        store_metrics(tmp_path, "k", metrics, {})
        loaded = load_metrics(tmp_path, "k")
        assert loaded == metrics
        assert loaded.peak_certified == (-2.5, 3.5)

        # entries written before the field existed still load
        entry = tmp_path / "k.json"
        data = json.loads(entry.read_text())
        del data["metrics"]["peak_certified"]
        entry.write_text(json.dumps(data))
        old = load_metrics(tmp_path, "k")
        assert old is not None and old.peak_certified is None

    def test_table1_prefers_stored_certificates(self, tmp_path):
        from repro.experiments import table1_errors

        payload = {
            "design": "mbm-t2", "bitwidth": 16, "kind": "worst-case-error",
            "method": "smt-ascent", "exact": True, "replayed": True,
            "peak_min": {"error_num": -1, "error_den": 12},
            "peak_max": {"error_num": 1, "error_den": 8},
        }
        save_certificate(payload, tmp_path)
        rows = {
            r["name"]: r
            for r in table1_errors(
                samples=2048, ids=["mbm-t2", "calm"], cache=tmp_path
            )
        }
        assert rows["mbm-t2"]["peak_certified"]
        assert rows["mbm-t2"]["peak_min"] == pytest.approx(-100.0 / 12)
        assert rows["mbm-t2"]["peak_max"] == pytest.approx(100.0 / 8)
        assert not rows["calm"]["peak_certified"]


class TestFormalCli:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    def test_prove_and_max_error(self, capsys):
        code, out = self.run(
            capsys, "formal", "--design", "realm-8-m4-q5",
            "--prove-equiv", "--max-error", "--no-cache",
        )
        assert code == 0
        assert "proved" in out
        assert "peak_max" in out
        assert "exact" in out

    def test_requires_a_query(self, capsys):
        code, _ = self.run(capsys, "formal", "--design", "calm")
        assert code == 2

    def test_unknown_design_exits_two(self, capsys):
        code, _ = self.run(
            capsys, "formal", "--design", "nope", "--max-error", "--no-cache"
        )
        assert code == 2
