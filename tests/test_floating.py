"""Tests for the approximate floating-point multiplier extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.realm import RealmMultiplier
from repro.multipliers.floating import (
    BFLOAT16_LIKE,
    FLOAT32,
    ApproxFloatMultiplier,
    FloatFormat,
)
from repro.multipliers.mitchell import MitchellMultiplier

finite_floats = st.floats(
    min_value=1e-20, max_value=1e20, allow_nan=False, allow_infinity=False
)


class TestFloatFormat:
    def test_float32_constants(self):
        assert FLOAT32.bias == 127
        assert FLOAT32.total_bits == 32

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_within_half_ulp(self, value):
        bits = FLOAT32.from_float(value)
        recovered = float(FLOAT32.to_float(bits))
        assert recovered == pytest.approx(value, rel=2.0**-23)

    def test_roundtrip_exact_for_representables(self):
        values = np.array([1.0, -2.5, 0.75, 1024.0, -0.015625])
        assert np.array_equal(FLOAT32.to_float(FLOAT32.from_float(values)), values)

    def test_zero_and_signed_zero(self):
        bits = FLOAT32.from_float(np.array([0.0, -0.0]))
        decoded = FLOAT32.to_float(bits)
        assert decoded[0] == 0.0 and decoded[1] == 0.0

    def test_subnormals_flush(self):
        tiny = np.array([1e-40])  # below float32 normal range
        assert float(FLOAT32.to_float(FLOAT32.from_float(tiny))[0]) == 0.0

    def test_overflow_saturates(self):
        huge = np.array([1e39])
        decoded = float(FLOAT32.to_float(FLOAT32.from_float(huge))[0])
        assert decoded == pytest.approx(3.4e38, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            FloatFormat(exponent_bits=1, mantissa_bits=4)
        with pytest.raises(ValueError):
            FloatFormat(exponent_bits=8, mantissa_bits=0)


class TestAccurateCore:
    def test_matches_float32_truncating_product(self):
        rng = np.random.default_rng(61)
        a = rng.uniform(-100, 100, 500)
        b = rng.uniform(-100, 100, 500)
        multiplier = ApproxFloatMultiplier(FLOAT32)
        got = multiplier.multiply(a, b)
        exact = FLOAT32.to_float(FLOAT32.from_float(a)) * FLOAT32.to_float(
            FLOAT32.from_float(b)
        )
        # truncating mantissa: result in (exact * (1 - 2^-23), exact]
        ratio = np.where(exact != 0, got / exact, 1.0)
        assert np.all(ratio <= 1.0 + 1e-12)
        assert np.all(ratio > 1.0 - 3e-7)

    def test_signs(self):
        multiplier = ApproxFloatMultiplier(FLOAT32)
        assert float(multiplier.multiply(-2.0, 3.0)) == -6.0
        assert float(multiplier.multiply(-2.0, -3.0)) == 6.0

    def test_zero_operand(self):
        multiplier = ApproxFloatMultiplier(FLOAT32)
        assert float(multiplier.multiply(0.0, 123.456)) == 0.0

    def test_core_width_validated(self):
        with pytest.raises(ValueError):
            ApproxFloatMultiplier(FLOAT32, lambda n: MitchellMultiplier(16))


class TestApproximateCores:
    def test_realm_core_error_matches_integer_realm(self):
        # the FP datapath's relative error IS the integer core's error on
        # full-scale significands
        rng = np.random.default_rng(62)
        a = rng.uniform(1.0, 1000.0, 4000)
        b = rng.uniform(1.0, 1000.0, 4000)
        fp_realm = ApproxFloatMultiplier(
            BFLOAT16_LIKE, lambda n: RealmMultiplier(bitwidth=n, m=8)
        )
        got = fp_realm.multiply(a, b)
        quantized = BFLOAT16_LIKE.to_float(BFLOAT16_LIKE.from_float(a)) * \
            BFLOAT16_LIKE.to_float(BFLOAT16_LIKE.from_float(b))
        errors = (got - quantized) / quantized
        # REALM8-class error (0.75% ME) plus ~2^-7 truncation
        assert abs(np.mean(errors)) < 0.01
        assert np.abs(errors).max() < 0.06

    def test_mitchell_core_biased_low(self):
        rng = np.random.default_rng(63)
        a = rng.uniform(1.0, 100.0, 2000)
        b = rng.uniform(1.0, 100.0, 2000)
        fp_calm = ApproxFloatMultiplier(
            FLOAT32, lambda n: MitchellMultiplier(bitwidth=n)
        )
        errors = (fp_calm.multiply(a, b) - a * b) / (a * b)
        assert np.mean(errors) < -0.03  # Mitchell's -3.85% bias survives

    def test_realm_beats_mitchell_in_fp(self):
        rng = np.random.default_rng(64)
        a = rng.uniform(0.01, 1e4, 2000)
        b = rng.uniform(0.01, 1e4, 2000)
        realm_fp = ApproxFloatMultiplier(
            FLOAT32, lambda n: RealmMultiplier(bitwidth=n, m=16)
        )
        calm_fp = ApproxFloatMultiplier(
            FLOAT32, lambda n: MitchellMultiplier(bitwidth=n)
        )
        realm_me = np.abs((realm_fp.multiply(a, b) - a * b) / (a * b)).mean()
        calm_me = np.abs((calm_fp.multiply(a, b) - a * b) / (a * b)).mean()
        assert realm_me < calm_me / 4

    def test_exponent_arithmetic_spans_binades(self):
        multiplier = ApproxFloatMultiplier(FLOAT32)
        assert float(multiplier.multiply(1e10, 1e-10)) == pytest.approx(1.0, rel=1e-6)
        assert float(multiplier.multiply(2.0**100, 2.0**-120)) == pytest.approx(
            2.0**-20
        )

    def test_product_underflow_flushes(self):
        multiplier = ApproxFloatMultiplier(FLOAT32)
        assert float(multiplier.multiply(1e-30, 1e-30)) == 0.0

    def test_product_overflow_saturates(self):
        multiplier = ApproxFloatMultiplier(FLOAT32)
        assert float(multiplier.multiply(1e30, 1e30)) == pytest.approx(
            3.4e38, rel=0.01
        )


class TestFuzz:
    @given(
        st.floats(min_value=1e-30, max_value=1e30, allow_nan=False),
        st.floats(min_value=1e-30, max_value=1e30, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_accurate_core_never_overestimates_quantized_product(self, a, b):
        # truncating mantissa + FTZ: the result is <= the product of the
        # quantized operands (and within one mantissa ulp below), or a
        # saturated/flushed special case
        multiplier = ApproxFloatMultiplier(FLOAT32)
        qa = float(FLOAT32.to_float(FLOAT32.from_float(a)))
        qb = float(FLOAT32.to_float(FLOAT32.from_float(b)))
        got = float(multiplier.multiply(a, b))
        exact = qa * qb
        if got == 0.0 or got == pytest.approx(3.4e38, rel=0.01):
            return  # underflow flush or overflow saturation
        assert got <= exact * (1 + 1e-12)
        assert got >= exact * (1 - 2.0**-22)

    @given(st.floats(min_value=-1e30, max_value=1e30, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_roundtrip_is_stable(self, value):
        # encoding an already-encoded value is the identity
        once = FLOAT32.from_float(value)
        decoded = FLOAT32.to_float(once)
        twice = FLOAT32.from_float(decoded)
        assert np.array_equal(once, twice)
