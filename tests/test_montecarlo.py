"""Tests for the Monte-Carlo characterization engine."""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import characterize, characterize_many
from repro.core.realm import RealmMultiplier
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.mitchell import MitchellMultiplier


class TestCharacterize:
    def test_deterministic(self):
        realm = RealmMultiplier(m=4)
        first = characterize(realm, samples=1 << 16, seed=7)
        second = characterize(realm, samples=1 << 16, seed=7)
        assert first == second

    def test_seed_changes_stream(self):
        realm = RealmMultiplier(m=4)
        first = characterize(realm, samples=1 << 16, seed=7)
        second = characterize(realm, samples=1 << 16, seed=8)
        assert first != second

    def test_accurate_multiplier_is_error_free(self):
        metrics = characterize(AccurateMultiplier(), samples=1 << 16)
        assert metrics.bias == 0.0
        assert metrics.mean_error == 0.0
        assert metrics.peak_min == 0.0 and metrics.peak_max == 0.0

    def test_chunking_does_not_change_result(self):
        calm = MitchellMultiplier()
        whole = characterize(calm, samples=1 << 16, chunk=1 << 16)
        pieces = characterize(calm, samples=1 << 16, chunk=1 << 12)
        assert whole.bias == pytest.approx(pieces.bias, rel=1e-12)
        assert whole.samples == pieces.samples

    def test_sample_counting_excludes_zero_products(self):
        metrics = characterize(AccurateMultiplier(), samples=1 << 14)
        # uniform over [0, 2^16): pairs with a zero are ~2^-15 of samples
        assert metrics.samples <= 1 << 14
        assert metrics.samples > (1 << 14) * 0.999

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            characterize(AccurateMultiplier(), samples=0)


class TestCharacterizeMany:
    def test_dict_and_pairs(self):
        designs = {"calm": MitchellMultiplier(), "acc": AccurateMultiplier()}
        from_dict = characterize_many(designs, samples=1 << 14)
        from_pairs = characterize_many(list(designs.items()), samples=1 << 14)
        assert from_dict == from_pairs
        assert from_dict["acc"].mean_error == 0.0

    def test_shared_input_stream(self):
        # the same seed must drive identical inputs across designs, so the
        # accurate design's exact products match cALM's reference stream
        results = characterize_many(
            {"a": MitchellMultiplier(), "b": MitchellMultiplier()},
            samples=1 << 14,
        )
        assert results["a"] == results["b"]
