"""Tests for the Monte-Carlo characterization engine."""

from __future__ import annotations

import pytest

import numpy as np

from repro.analysis.montecarlo import (
    characterize,
    characterize_many,
    characterize_workload,
    gaussian_sampler,
    sample_pairs,
)
from repro.core.realm import RealmMultiplier
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.mitchell import MitchellMultiplier


class TestCharacterize:
    def test_deterministic(self):
        realm = RealmMultiplier(m=4)
        first = characterize(realm, samples=1 << 16, seed=7)
        second = characterize(realm, samples=1 << 16, seed=7)
        assert first == second

    def test_seed_changes_stream(self):
        realm = RealmMultiplier(m=4)
        first = characterize(realm, samples=1 << 16, seed=7)
        second = characterize(realm, samples=1 << 16, seed=8)
        assert first != second

    def test_accurate_multiplier_is_error_free(self):
        metrics = characterize(AccurateMultiplier(), samples=1 << 16)
        assert metrics.bias == 0.0
        assert metrics.mean_error == 0.0
        assert metrics.peak_min == 0.0 and metrics.peak_max == 0.0

    def test_chunking_does_not_change_result(self):
        # exact invariance: per-block accumulators merge in block order,
        # so chunk is purely a batching knob
        calm = MitchellMultiplier()
        whole = characterize(calm, samples=1 << 16, chunk=1 << 16)
        pieces = characterize(calm, samples=1 << 16, chunk=1 << 12)
        assert whole == pieces

    def test_workers_bit_identical(self):
        realm = RealmMultiplier(m=4)
        serial = characterize(realm, samples=1 << 17, seed=5, workers=1)
        parallel = characterize(realm, samples=1 << 17, seed=5, workers=2)
        assert serial == parallel

    def test_workers_and_chunk_commute(self):
        calm = MitchellMultiplier()
        a = characterize(calm, samples=(1 << 17) + 123, chunk=1 << 16, workers=2)
        b = characterize(calm, samples=(1 << 17) + 123, chunk=1 << 18)
        assert a == b

    def test_sample_counting_excludes_zero_products(self):
        metrics = characterize(AccurateMultiplier(), samples=1 << 14)
        # uniform over [0, 2^16): pairs with a zero are ~2^-15 of samples
        assert metrics.samples <= 1 << 14
        assert metrics.samples > (1 << 14) * 0.999

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            characterize(AccurateMultiplier(), samples=0)


class TestArgumentValidation:
    """Nonsensical engine arguments fail loudly at the API boundary,
    before any pool or cache machinery runs."""

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError, match="samples"):
            characterize(AccurateMultiplier(), samples=-5)

    def test_rejects_non_integer_samples(self):
        with pytest.raises(ValueError, match="samples"):
            characterize(AccurateMultiplier(), samples=True)
        with pytest.raises(ValueError, match="samples"):
            characterize(AccurateMultiplier(), samples=2.5)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk"):
            characterize(AccurateMultiplier(), samples=1 << 12, chunk=0)

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            characterize(AccurateMultiplier(), samples=1 << 12, workers=-1)

    def test_characterize_many_validates_too(self):
        with pytest.raises(ValueError, match="samples"):
            characterize_many({"a": AccurateMultiplier()}, samples=0)

    def test_rejects_policy_and_knob_conflict(self):
        from repro.analysis.runtime import ResiliencePolicy

        with pytest.raises(ValueError, match="not both"):
            characterize(
                AccurateMultiplier(),
                samples=1 << 12,
                policy=ResiliencePolicy(),
                max_retries=1,
            )


class TestCharacterizeMany:
    def test_dict_and_pairs(self):
        designs = {"calm": MitchellMultiplier(), "acc": AccurateMultiplier()}
        from_dict = characterize_many(designs, samples=1 << 14)
        from_pairs = characterize_many(list(designs.items()), samples=1 << 14)
        assert from_dict == from_pairs
        assert from_dict["acc"].mean_error == 0.0

    def test_shared_input_stream(self):
        # the same seed must drive identical inputs across designs, so the
        # accurate design's exact products match cALM's reference stream
        results = characterize_many(
            {"a": MitchellMultiplier(), "b": MitchellMultiplier()},
            samples=1 << 14,
        )
        assert results["a"] == results["b"]

    def test_forwards_chunk_and_workers(self):
        designs = {"realm": RealmMultiplier(m=4), "calm": MitchellMultiplier()}
        serial = characterize_many(designs, samples=1 << 16, chunk=1 << 12)
        parallel = characterize_many(
            designs, samples=1 << 16, chunk=1 << 12, workers=2
        )
        assert serial == parallel
        # and the results are the same as characterizing one by one
        assert serial["realm"] == characterize(designs["realm"], samples=1 << 16)

    def test_per_design_progress_callback(self):
        designs = {"a": MitchellMultiplier(), "b": AccurateMultiplier()}
        events = []
        characterize_many(designs, samples=1 << 14, progress=events.append)
        assert [e["design"] for e in events] == ["a", "b"]
        for event in events:
            assert event["event"] == "design"
            assert event["total"] == 2
            assert event["seconds"] >= 0.0

    def test_parallel_progress_covers_every_design(self):
        designs = {"a": MitchellMultiplier(), "b": AccurateMultiplier()}
        events = []
        characterize_many(
            designs, samples=1 << 14, workers=2, progress=events.append
        )
        assert sorted(e["design"] for e in events) == ["a", "b"]


class TestSamplePairs:
    def test_yields_operand_blocks(self):
        blocks = list(sample_pairs(8, 100_000, seed=1))
        assert sum(a.size for a, _ in blocks) == 100_000
        assert all(a.size == b.size for a, b in blocks)
        for a, b in blocks:
            assert a.min() >= 0 and b.min() >= 0
            assert a.max() < 256 and b.max() < 256  # bitwidth respected

    def test_deterministic_and_seeded(self):
        first = [a for a, _ in sample_pairs(16, 1 << 17, seed=9)]
        second = [a for a, _ in sample_pairs(16, 1 << 17, seed=9)]
        other = [a for a, _ in sample_pairs(16, 1 << 17, seed=10)]
        assert all(np.array_equal(x, y) for x, y in zip(first, second))
        assert not all(np.array_equal(x, y) for x, y in zip(first, other))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            list(sample_pairs(16, 0))
        with pytest.raises(ValueError):
            list(sample_pairs(0, 16))


class TestCharacterizeWorkload:
    def test_chunk_invariant(self):
        # regression: the workload stream must depend only on (seed,
        # samples) — the chunk memory knob used to change the inputs
        realm = RealmMultiplier(m=4)
        sampler = gaussian_sampler(16)
        small = characterize_workload(
            realm, sampler, samples=1 << 16, seed=3, chunk=1 << 12
        )
        large = characterize_workload(
            realm, sampler, samples=1 << 16, seed=3, chunk=1 << 20
        )
        assert small == large

    def test_workers_bit_identical(self):
        realm = RealmMultiplier(m=4)
        sampler = gaussian_sampler(16)
        serial = characterize_workload(realm, sampler, samples=1 << 16, seed=3)
        parallel = characterize_workload(
            realm, sampler, samples=1 << 16, seed=3, workers=2
        )
        assert serial == parallel
