"""Tests for the Fig. 1 error profiles and Fig. 2 segment analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.exhaustive import error_grid, exhaustive_metrics
from repro.analysis.profiles import (
    ascii_heatmap,
    profile,
    segment_mean_errors,
)
from repro.core.factors import compute_factors
from repro.core.realm import RealmMultiplier
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.mitchell import MitchellMultiplier


class TestErrorGrid:
    def test_values_match_direct_computation(self):
        calm = MitchellMultiplier()
        values, approx, errors = error_grid(calm, 10, 20)
        assert values.tolist() == list(range(10, 21))
        i, j = 3, 7
        a, b = values[i], values[j]
        assert approx[i, j] == int(calm.multiply(a, b))
        assert errors[i, j] == pytest.approx(
            (int(calm.multiply(a, b)) - a * b) / (a * b)
        )

    def test_rejects_zero_lo(self):
        with pytest.raises(ValueError):
            error_grid(MitchellMultiplier(), 0, 10)
        with pytest.raises(ValueError):
            error_grid(MitchellMultiplier(), 10, 5)

    def test_accurate_grid_is_zero(self):
        _, _, errors = error_grid(AccurateMultiplier(), 32, 64)
        assert np.all(errors == 0)


class TestExhaustiveMetrics:
    def test_matches_grid(self):
        calm = MitchellMultiplier(bitwidth=8)
        metrics = exhaustive_metrics(calm, lo=1)
        _, _, errors = error_grid(calm, 1, 255)
        assert metrics.bias == pytest.approx(errors.mean() * 100)
        assert metrics.peak_min == pytest.approx(errors.min() * 100)

    def test_rejects_out_of_range_bounds(self):
        # regression: hi past the operand maximum used to silently sweep
        # wrapped/invalid operands instead of raising
        calm = MitchellMultiplier(bitwidth=8)
        with pytest.raises(ValueError, match="exceeds"):
            exhaustive_metrics(calm, lo=0, hi=256)
        with pytest.raises(ValueError, match="0 <= lo <= hi"):
            exhaustive_metrics(calm, lo=-1, hi=10)
        with pytest.raises(ValueError, match="0 <= lo <= hi"):
            exhaustive_metrics(calm, lo=20, hi=10)
        # the full in-range sweep still works (255^2 nonzero-product pairs)
        assert exhaustive_metrics(calm, lo=0, hi=255).samples == 255 * 255


class TestProfile:
    def test_fig1_statistics(self):
        # Fig. 1 range {32..255}: cALM's profile keeps its signature stats
        summary = profile(MitchellMultiplier())
        assert summary.errors.shape == (224, 224)
        assert summary.peak_error == pytest.approx(11.11, abs=0.15)
        assert summary.bias == pytest.approx(-3.85, abs=0.15)

    def test_realm_profile_beats_calm(self):
        realm = profile(RealmMultiplier(m=16, t=0))
        calm = profile(MitchellMultiplier())
        assert realm.mean_error < calm.mean_error / 5
        assert realm.peak_error < calm.peak_error / 3


class TestAsciiHeatmap:
    def test_shape_and_charset(self):
        _, _, errors = error_grid(MitchellMultiplier(), 32, 255)
        art = ascii_heatmap(errors, width=32)
        lines = art.splitlines()
        assert len(lines) == 32
        assert all(len(line) == 32 for line in lines)

    def test_all_zero_grid(self):
        art = ascii_heatmap(np.zeros((16, 16)), width=8)
        assert set("".join(art.splitlines())) == {" "}


class TestSegmentMeans:
    def test_calm_segment_means_track_factors(self):
        # the per-segment mean error of cALM is what the s_ij factors
        # cancel: both peak on the anti-diagonal
        means = segment_mean_errors(MitchellMultiplier(), m=4)
        factors = compute_factors(4)
        assert np.all(means < 0)
        worst_segment = np.unravel_index(np.argmin(means), means.shape)
        largest_factor = np.unravel_index(np.argmax(factors), factors.shape)
        assert worst_segment[0] + worst_segment[1] == 3  # anti-diagonal
        assert largest_factor[0] + largest_factor[1] == 3

    def test_realm_collapses_segment_means(self):
        calm_means = segment_mean_errors(MitchellMultiplier(), m=4)
        realm_means = segment_mean_errors(RealmMultiplier(m=4, t=0), m=4)
        assert np.abs(realm_means).max() < np.abs(calm_means).max() / 5
