"""Tests for the switching-activity / power estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.logic.activity import estimate_power, markov_stream
from repro.logic.netlist import Netlist


class TestMarkovStream:
    def test_statistics(self):
        rng = np.random.default_rng(1)
        bits = markov_stream(200_000, toggle_rate=0.25, probability=0.5, rng=rng)
        assert bits.mean() == pytest.approx(0.5, abs=0.01)
        toggles = np.count_nonzero(bits[1:] != bits[:-1]) / (len(bits) - 1)
        assert toggles == pytest.approx(0.25, abs=0.01)

    def test_asymmetric_probability(self):
        rng = np.random.default_rng(2)
        bits = markov_stream(200_000, toggle_rate=0.2, probability=0.8, rng=rng)
        assert bits.mean() == pytest.approx(0.8, abs=0.01)
        toggles = np.count_nonzero(bits[1:] != bits[:-1]) / (len(bits) - 1)
        assert toggles == pytest.approx(0.2, abs=0.01)

    def test_unreachable_toggle_rate_rejected(self):
        with pytest.raises(ValueError):
            markov_stream(100, toggle_rate=0.9, probability=0.9)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            markov_stream(100, probability=0.0)


class TestEstimatePower:
    def _toy_netlist(self):
        nl = Netlist("toy")
        a, b = nl.new_input("a"), nl.new_input("b")
        nl.set_outputs([nl.add("AND2", a, b)])
        return nl

    def test_positive_components(self):
        report = estimate_power(self._toy_netlist(), vectors=512, seed=3)
        assert report.dynamic_uw > 0
        assert report.leakage_uw > 0
        assert report.total_uw == report.dynamic_uw + report.leakage_uw
        assert 0 < report.mean_toggle_rate < 1

    def test_deterministic(self):
        nl = self._toy_netlist()
        first = estimate_power(nl, vectors=512, seed=3)
        second = estimate_power(nl, vectors=512, seed=3)
        assert first == second

    def test_higher_toggle_rate_more_power(self):
        nl = self._toy_netlist()
        calm_inputs = estimate_power(nl, vectors=4096, seed=4, toggle_rate=0.1)
        busy_inputs = estimate_power(nl, vectors=4096, seed=4, toggle_rate=0.5)
        assert busy_inputs.dynamic_uw > calm_inputs.dynamic_uw

    def test_requires_two_vectors(self):
        with pytest.raises(ValueError):
            estimate_power(self._toy_netlist(), vectors=1)

    def test_bigger_netlist_more_power(self):
        from repro.circuits.wallace import wallace_netlist

        small = estimate_power(wallace_netlist(4), vectors=1024, seed=5)
        large = estimate_power(wallace_netlist(8), vectors=1024, seed=5)
        assert large.dynamic_uw > small.dynamic_uw
        assert large.leakage_uw > small.leakage_uw
