"""Tests for pipelining: cuts, cost, and cycle-accurate equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.realm_rtl import realm_netlist
from repro.circuits.wallace import wallace_netlist
from repro.logic.netlist import Netlist
from repro.logic.pipeline import (
    pipeline_cuts,
    pipeline_netlist,
    simulate_pipeline,
)
from repro.logic.sim import evaluate_words
from repro.synth.timing import analyze_timing


class TestCuts:
    def test_single_stage_is_identity(self):
        netlist = wallace_netlist(6)
        netlist.prune()
        assert pipeline_cuts(netlist, 1) == [0] * netlist.gate_count

    def test_stages_respect_dependencies(self):
        netlist = wallace_netlist(8)
        netlist.prune()
        assignment = pipeline_cuts(netlist, 4)
        stage_of_net = {}
        for gate, stage in zip(netlist.gates, assignment):
            for i in gate.inputs:
                assert stage_of_net.get(i, 0) <= stage
            stage_of_net[gate.output] = stage

    def test_all_stages_used(self):
        netlist = wallace_netlist(8)
        netlist.prune()
        assignment = pipeline_cuts(netlist, 3)
        assert set(assignment) == {0, 1, 2}

    def test_invalid_stage_count(self):
        netlist = wallace_netlist(4)
        netlist.prune()
        with pytest.raises(ValueError):
            pipeline_cuts(netlist, 0)


class TestCostAndTiming:
    def test_pipelining_raises_throughput(self):
        netlist = wallace_netlist(16)
        netlist.prune()
        combinational = analyze_timing(netlist).critical_path_ps
        pipe = pipeline_netlist(netlist, 4)
        assert max(pipe.stage_delays()) < combinational / 2
        assert pipe.throughput_ghz > 1000.0 / combinational

    def test_register_cost_grows_with_stages(self):
        netlist = realm_netlist(16, m=8, t=0)
        two = pipeline_netlist(netlist, 2)
        four = pipeline_netlist(netlist, 4)
        assert four.register_count > two.register_count
        assert four.register_area > two.register_area

    def test_deep_pipeline_meets_1ghz(self):
        # the alternative to sizing: the accurate multiplier closes 1 GHz
        # with a few pipeline stages
        netlist = wallace_netlist(16)
        netlist.prune()
        pipe = pipeline_netlist(netlist, 4)
        assert pipe.clock_ps < 1000.0

    def test_latency(self):
        netlist = wallace_netlist(8)
        netlist.prune()
        assert pipeline_netlist(netlist, 3).latency_cycles == 2

    def test_repr(self):
        netlist = wallace_netlist(4)
        netlist.prune()
        assert "stages" in repr(pipeline_netlist(netlist, 2))


class TestCycleAccurateSimulation:
    @pytest.mark.parametrize("stages", [1, 2, 3, 4])
    def test_matches_combinational_with_latency(self, stages):
        netlist = wallace_netlist(6)
        netlist.prune()
        pipe = pipeline_netlist(netlist, stages)
        rng = np.random.default_rng(81)
        cycles = 24
        a = rng.integers(0, 64, cycles)
        b = rng.integers(0, 64, cycles)
        buses = [netlist.inputs[:6], netlist.inputs[6:]]

        streamed = simulate_pipeline(pipe, buses, [a, b])
        reference = evaluate_words(netlist, buses, [a, b])
        latency = pipe.latency_cycles
        usable = cycles - latency
        assert np.array_equal(streamed[latency:], reference[:usable])

    def test_realm_datapath_pipelines(self):
        netlist = realm_netlist(8, m=4, t=0)
        pipe = pipeline_netlist(netlist, 3)
        rng = np.random.default_rng(82)
        cycles = 16
        a = rng.integers(0, 256, cycles)
        b = rng.integers(0, 256, cycles)
        buses = [netlist.inputs[:8], netlist.inputs[8:]]
        streamed = simulate_pipeline(pipe, buses, [a, b])
        reference = evaluate_words(netlist, buses, [a, b])
        latency = pipe.latency_cycles
        assert np.array_equal(streamed[latency:], reference[: cycles - latency])

    def test_one_result_per_cycle(self):
        # full throughput: distinct operands every cycle yield distinct
        # results every cycle after the fill latency
        netlist = wallace_netlist(4)
        netlist.prune()
        pipe = pipeline_netlist(netlist, 2)
        a = np.arange(1, 11)
        b = np.full(10, 3)
        buses = [netlist.inputs[:4], netlist.inputs[4:]]
        streamed = simulate_pipeline(pipe, buses, [a, b])
        assert streamed[pipe.latency_cycles :].tolist() == [
            v * 3 for v in range(1, 10 + 1 - pipe.latency_cycles)
        ]


class TestPipelinePower:
    def test_registers_add_power(self):
        netlist = wallace_netlist(8)
        netlist.prune()
        from repro.logic.activity import estimate_power

        combinational = estimate_power(netlist, vectors=1024)
        pipe = pipeline_netlist(netlist, 3)
        piped = pipe.estimate_power(vectors=1024)
        assert piped.dynamic_uw > combinational.dynamic_uw
        assert piped.leakage_uw > combinational.leakage_uw

    def test_single_stage_adds_nothing(self):
        netlist = wallace_netlist(8)
        netlist.prune()
        from repro.logic.activity import estimate_power

        pipe = pipeline_netlist(netlist, 1)
        assert (
            pipe.estimate_power(vectors=512).dynamic_uw
            == estimate_power(netlist, vectors=512).dynamic_uw
        )

    def test_more_stages_more_register_power(self):
        netlist = wallace_netlist(8)
        netlist.prune()
        two = pipeline_netlist(netlist, 2).estimate_power(vectors=512)
        five = pipeline_netlist(netlist, 5).estimate_power(vectors=512)
        assert five.dynamic_uw > two.dynamic_uw
