"""Unit tests for the scaling-analysis module."""

from __future__ import annotations

from repro.analysis.scaling import bitwidth_scaling, knob_surface
from repro.core.realm import RealmMultiplier

SAMPLES = 1 << 16


class TestBitwidthScaling:
    def test_width_independence_above_12_bits(self):
        results = bitwidth_scaling(
            lambda n: RealmMultiplier(bitwidth=n, m=4, t=0),
            bitwidths=(12, 16, 20),
            samples=SAMPLES,
        )
        errors = [metrics.mean_error for metrics in results.values()]
        assert max(errors) - min(errors) < 0.15

    def test_keys_are_bitwidths(self):
        results = bitwidth_scaling(
            lambda n: RealmMultiplier(bitwidth=n, m=4, t=0),
            bitwidths=(10, 12),
            samples=SAMPLES,
        )
        assert sorted(results) == [10, 12]


class TestKnobSurface:
    def test_grid_shape_and_monotonicity(self):
        results = knob_surface(
            m_values=(4, 8), t_values=(0, 8), samples=SAMPLES
        )
        assert set(results) == {(4, 0), (4, 8), (8, 0), (8, 8)}
        # monotone in M at fixed t
        assert results[(8, 0)].mean_error < results[(4, 0)].mean_error
        # t=8 never better than t=0
        assert results[(4, 8)].mean_error >= results[(4, 0)].mean_error - 0.02
