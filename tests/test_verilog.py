"""Tests for the Verilog exporter, including a semantic round trip.

Without an HDL simulator available, the round-trip test re-interprets the
emitted continuous assigns with a miniature expression evaluator and
checks the recovered module against the original netlist's simulation on
random vectors — i.e. the Verilog text itself is what gets verified, not
just its syntax.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.circuits.realm_rtl import realm_netlist
from repro.circuits.wallace import wallace_netlist
from repro.logic.netlist import Netlist
from repro.logic.sim import evaluate_words, int_to_bus
from repro.logic.verilog import to_verilog

_ASSIGN = re.compile(r"^\s*assign\s+(\w+)\s*=\s*(.+);$")


def _evaluate_expression(expression: str, values: dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate a single emitted RHS (the exporter's own grammar)."""
    expression = expression.strip()
    if expression.startswith("(") and expression.endswith(")"):
        # strip only if the parens wrap the whole expression
        depth = 0
        wraps = True
        for index, char in enumerate(expression):
            depth += char == "("
            depth -= char == ")"
            if depth == 0 and index < len(expression) - 1:
                wraps = False
                break
        if wraps:
            return _evaluate_expression(expression[1:-1], values)

    def split_top(expr, symbol):
        depth = 0
        for index, char in enumerate(expr):
            depth += char == "("
            depth -= char == ")"
            if depth == 0 and char == symbol:
                return expr[:index], expr[index + 1 :]
        return None

    ternary = split_top(expression, "?")
    if ternary is not None:
        condition, rest = ternary
        left, right = split_top(rest, ":")
        return np.where(
            _evaluate_expression(condition, values),
            _evaluate_expression(left, values),
            _evaluate_expression(right, values),
        )
    for symbol in ("|", "^", "&"):
        parts = split_top(expression, symbol)
        if parts is not None:
            lhs = _evaluate_expression(parts[0], values)
            rhs = _evaluate_expression(parts[1], values)
            return {"|": lhs | rhs, "^": lhs ^ rhs, "&": lhs & rhs}[symbol]
    if expression.startswith("~"):
        return ~_evaluate_expression(expression[1:], values)
    if expression == "1'b0":
        return np.zeros_like(next(iter(values.values())))
    if expression == "1'b1":
        return np.ones_like(next(iter(values.values())))
    return values[expression]


def _interpret_verilog(text: str, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    values = dict(inputs)
    for line in text.splitlines():
        match = _ASSIGN.match(line)
        if match:
            values[match.group(1)] = _evaluate_expression(match.group(2), values)
    return values


class TestExporter:
    def test_requires_outputs(self):
        nl = Netlist("t")
        nl.new_input("a")
        with pytest.raises(ValueError):
            to_verilog(nl)

    def test_module_structure(self):
        nl = wallace_netlist(4)
        nl.prune()
        text = to_verilog(nl, module_name="mult4")
        assert text.startswith("// generated")
        assert "module mult4 (" in text
        assert text.rstrip().endswith("endmodule")
        assert text.count("input  wire") == 8
        assert text.count("output wire") == 8

    def test_identifier_sanitization(self):
        nl = Netlist("weird name!")
        a = nl.new_input("a[0]")
        nl.set_outputs([nl.add("INV", a)])
        text = to_verilog(nl)
        assert "a[0]" not in text  # brackets are not valid in plain ids
        assert "module weird_name_" in text

    @pytest.mark.parametrize(
        "make",
        [
            lambda: wallace_netlist(6),
            lambda: realm_netlist(8, m=4, t=1),
        ],
        ids=["wallace6", "realm8bit"],
    )
    def test_semantic_roundtrip(self, make):
        netlist = make()
        if not netlist.gates or not netlist.outputs:
            pytest.skip("empty netlist")
        netlist.prune()
        text = to_verilog(netlist)

        bitwidth = len(netlist.inputs) // 2
        rng = np.random.default_rng(99)
        a = rng.integers(0, 1 << bitwidth, 300)
        b = rng.integers(0, 1 << bitwidth, 300)

        # reference: the library's own simulator
        want = evaluate_words(
            netlist, [netlist.inputs[:bitwidth], netlist.inputs[bitwidth:]], [a, b]
        )

        # reinterpret the emitted Verilog text
        stimulus = {}
        bits_a = int_to_bus(a, bitwidth)
        bits_b = int_to_bus(b, bitwidth)
        for position in range(bitwidth):
            stimulus[f"a_{position}_"] = bits_a[:, position]
            stimulus[f"b_{position}_"] = bits_b[:, position]
        values = _interpret_verilog(text, stimulus)
        got = np.zeros(len(a), dtype=np.int64)
        for position in range(len(netlist.outputs)):
            got |= values[f"out_{position}"].astype(np.int64) << position
        assert np.array_equal(got, want)
