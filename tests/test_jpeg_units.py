"""Unit tests for the JPEG substrate pieces: DCT, quantization, zig-zag."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jpeg.dct import (
    COEFF_BITS,
    dct_matrix_q7,
    forward_dct,
    inverse_dct,
    signed_multiply,
)
from repro.jpeg.images import IMAGE_NAMES, test_image as make_image
from repro.jpeg.psnr import mse, psnr
from repro.jpeg.quant import BASE_LUMINANCE, dequantize, quant_table, quantize
from repro.jpeg.zigzag import from_zigzag, to_zigzag, zigzag_order
from repro.multipliers.accurate import AccurateMultiplier


class TestDctMatrix:
    def test_orthonormal_within_quantization(self):
        basis = dct_matrix_q7() / float(1 << COEFF_BITS)
        gram = basis @ basis.T
        assert np.allclose(gram, np.eye(8), atol=0.02)

    def test_dc_row_constant(self):
        basis = dct_matrix_q7()
        assert len(set(basis[0].tolist())) == 1

    def test_coefficients_fit_q7(self):
        basis = dct_matrix_q7()
        assert np.abs(basis).max() <= 1 << (COEFF_BITS - 1)


class TestSignedMultiply:
    def test_signs(self):
        acc = AccurateMultiplier()
        a = np.array([3, -3, 3, -3])
        b = np.array([5, 5, -5, -5])
        assert signed_multiply(acc, a, b).tolist() == [15, -15, -15, 15]

    def test_magnitude_overflow_raises(self):
        acc = AccurateMultiplier()
        with pytest.raises(ValueError):
            signed_multiply(acc, np.array([1 << 16]), np.array([1]))


class TestDctRoundtrip:
    def test_accurate_roundtrip_near_identity(self):
        rng = np.random.default_rng(21)
        blocks = rng.integers(-128, 128, (10, 8, 8))
        acc = AccurateMultiplier()
        recovered = inverse_dct(acc, forward_dct(acc, blocks))
        # Q7 basis quantization costs a couple of LSBs, no more
        assert np.abs(recovered - blocks).max() <= 3

    def test_dc_coefficient_tracks_mean(self):
        acc = AccurateMultiplier()
        flat = np.full((1, 8, 8), 100, dtype=np.int64)
        coefficients = forward_dct(acc, flat)
        # orthonormal DCT: DC = 8 * mean; the Q7-rounded DC basis entry
        # (45/128 vs 1/(2*sqrt(2))) costs ~0.55% per pass, i.e. ~10 here
        assert abs(int(coefficients[0, 0, 0]) - 800) <= 12
        assert np.abs(coefficients[0][np.unravel_index(range(1, 64), (8, 8))]).max() <= 1

    def test_approximate_multiplier_stays_close(self):
        from repro.core.realm import RealmMultiplier

        rng = np.random.default_rng(22)
        blocks = rng.integers(-128, 128, (10, 8, 8))
        acc = AccurateMultiplier()
        realm = RealmMultiplier(m=16, t=8)
        exact = forward_dct(acc, blocks)
        approx = forward_dct(realm, blocks)
        assert np.abs(approx - exact).max() <= 32  # a few percent of range


class TestQuantization:
    def test_quality_50_is_base_table(self):
        assert np.array_equal(quant_table(50), BASE_LUMINANCE)

    def test_higher_quality_divides_less(self):
        assert np.all(quant_table(90) <= quant_table(50))
        assert np.all(quant_table(10) >= quant_table(50))

    def test_entries_clipped_to_byte(self):
        assert quant_table(1).max() <= 255
        assert quant_table(100).min() >= 1

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            quant_table(0)
        with pytest.raises(ValueError):
            quant_table(101)

    def test_quantize_rounds_to_nearest(self):
        table = np.full((8, 8), 10, dtype=np.int64)
        coefficients = np.zeros((8, 8), dtype=np.int64)
        coefficients[0, 0] = 15
        coefficients[0, 1] = -15
        coefficients[0, 2] = 14
        levels = quantize(coefficients, table)
        assert levels[0, 0] == 2 and levels[0, 1] == -2 and levels[0, 2] == 1

    def test_dequantize_inverts_scale(self):
        table = quant_table(50)
        levels = np.ones((8, 8), dtype=np.int64)
        assert np.array_equal(dequantize(levels, table), table)


class TestZigzag:
    def test_known_prefix(self):
        rows, cols = zigzag_order()
        prefix = list(zip(rows[:6].tolist(), cols[:6].tolist()))
        assert prefix == [(0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]

    def test_roundtrip(self):
        rng = np.random.default_rng(23)
        blocks = rng.integers(-100, 100, (5, 8, 8))
        assert np.array_equal(from_zigzag(to_zigzag(blocks)), blocks)

    def test_permutation_complete(self):
        rows, cols = zigzag_order()
        assert sorted(zip(rows.tolist(), cols.tolist())) == [
            (r, c) for r in range(8) for c in range(8)
        ]


class TestPsnr:
    def test_identical_images_infinite(self):
        image = make_image("cameraman")
        assert psnr(image, image) == np.inf

    def test_known_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 16.0)
        assert mse(a, b) == pytest.approx(256.0)
        assert psnr(a, b) == pytest.approx(10 * np.log10(255**2 / 256))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((8, 8)))


class TestImages:
    def test_deterministic(self):
        assert np.array_equal(make_image("lena"), make_image("lena"))

    def test_distinct_scenes(self):
        assert not np.array_equal(make_image("lena"), make_image("cameraman"))

    def test_shape_and_range(self):
        for name in IMAGE_NAMES:
            image = make_image(name)
            assert image.shape == (256, 256)
            assert image.dtype == np.uint8
            assert image.max() > 150 and image.min() < 100  # real dynamic range

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_image("baboon")


class TestExtraImages:
    def test_all_images_available(self):
        from repro.jpeg.images import ALL_IMAGE_NAMES

        for name in ALL_IMAGE_NAMES:
            image = make_image(name)
            assert image.shape == (256, 256)
            assert image.max() > 150 and image.min() < 100

    def test_extras_compress_like_the_canonical_set(self):
        # the stand-ins must be JPEG-compressible scenes, not noise:
        # quality-50 PSNR lands in the photographic 28-45 dB band
        from repro.jpeg.codec import roundtrip_psnr
        from repro.multipliers.accurate import AccurateMultiplier

        for name in ("peppers", "bridge"):
            quality_db, compressed = roundtrip_psnr(
                AccurateMultiplier(), make_image(name)
            )
            assert 26.0 < quality_db < 46.0, name
            assert compressed.bits_per_pixel < 4.0

    def test_table2_set_unchanged(self):
        from repro.jpeg.images import IMAGE_NAMES

        assert IMAGE_NAMES == ("cameraman", "lena", "livingroom")
