"""Tests for the PGM figure renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.render import render_heatmap, render_histogram, save_pgm


def _read_pgm(path):
    data = path.read_bytes()
    assert data.startswith(b"P5\n")
    header, rest = data.split(b"255\n", 1)
    dims = header.split(b"\n")[1].split()
    width, height = int(dims[0]), int(dims[1])
    pixels = np.frombuffer(rest, dtype=np.uint8).reshape(height, width)
    return pixels


class TestSavePgm:
    def test_roundtrip(self, tmp_path):
        pixels = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path = save_pgm(pixels, tmp_path / "t.pgm")
        assert np.array_equal(_read_pgm(path), pixels)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(np.zeros(4), tmp_path / "t.pgm")
        with pytest.raises(ValueError):
            save_pgm(np.full((2, 2), 300.0), tmp_path / "t.pgm")


class TestHeatmap:
    def test_signed_midpoint(self, tmp_path):
        surface = np.array([[-1.0, 0.0], [0.0, 1.0]])
        path = render_heatmap(surface, tmp_path / "h.pgm", scale=1)
        pixels = _read_pgm(path)
        assert pixels[0, 0] < 10  # most negative -> black
        assert pixels[1, 1] == 255  # most positive -> white
        assert abs(int(pixels[0, 1]) - 128) <= 1  # zero -> mid-gray

    def test_scale(self, tmp_path):
        surface = np.zeros((4, 4))
        path = render_heatmap(surface, tmp_path / "h.pgm", scale=3)
        assert _read_pgm(path).shape == (12, 12)

    def test_fig1_surface_renders(self, tmp_path):
        from repro.analysis.profiles import profile
        from repro.multipliers.mitchell import MitchellMultiplier

        summary = profile(MitchellMultiplier(), 32, 96)
        path = render_heatmap(summary.errors, tmp_path / "calm.pgm", scale=1)
        pixels = _read_pgm(path)
        assert pixels.shape == summary.errors.shape
        # Mitchell never overestimates: no pixel brighter than mid-gray+1
        assert pixels.max() <= 129


class TestHistogram:
    def test_bar_heights(self, tmp_path):
        density = np.array([0.0, 0.5, 1.0])
        path = render_histogram(density, tmp_path / "b.pgm", height=10, bar_width=2)
        pixels = _read_pgm(path)
        assert pixels.shape == (10, 6)
        assert pixels[:, 0:2].sum() == 0  # empty bin
        assert pixels[0, 4] == 255  # full-height bin reaches the top

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            render_histogram(np.zeros((2, 2)), tmp_path / "b.pgm")
