"""Conformance subsystem: oracles, coverage map, fuzzer, shrinker, reports.

The suite proves the harness itself is trustworthy before trusting its
verdicts: agreement across every layer on healthy designs, guaranteed
detection + minimal shrinking of an injected bug, hand-counted coverage
exactness on the 4-bit grid, and bit-identical results at any worker
count and across repeated runs.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis import chaos
from repro.conformance import (
    CoverageMap,
    DifferentialOracle,
    build_report,
    default_segments,
    fuzz,
    render_json,
    render_text,
    resolve_design,
    shrink_pair,
)
from repro.conformance.oracles import (
    COMMUTE_FAMILIES,
    POW2_SHIFT_FAMILIES,
    UNDERESTIMATE_FAMILIES,
)
from repro.multipliers.registry import build
from tests.strategies import ALL_IDS, operand_pairs


# ---------------------------------------------------------------------------
# design resolution
# ---------------------------------------------------------------------------


class TestResolveDesign:
    def test_registry_id(self):
        design, model, rtl_factory, servable = resolve_design("realm16-t0")
        assert design == "realm16-t0"
        assert model.bitwidth == 16
        assert servable
        assert rtl_factory is not None

    def test_adhoc_realm_spec(self):
        design, model, rtl_factory, servable = resolve_design("realm-8-m4-q5")
        assert design == "realm-8-m4-q5"
        assert model.bitwidth == 8
        assert model.config.m == 4
        assert model.config.q == 5
        assert not servable  # the serving registry cannot resolve ad-hoc specs
        assert rtl_factory is not None

    def test_adhoc_spec_with_truncation(self):
        _, model, _, _ = resolve_design("realm-16-m16-q6-t4")
        assert model.config.t == 4

    def test_unknown_design_raises_keyerror_with_hint(self):
        with pytest.raises(KeyError, match="unknown design"):
            resolve_design("not-a-design")

    def test_registry_id_with_bitwidth_override(self):
        _, model, _, _ = resolve_design("calm", bitwidth=8)
        assert model.bitwidth == 8


# ---------------------------------------------------------------------------
# oracle agreement on healthy designs (realm / mitchell / drum families)
# ---------------------------------------------------------------------------


AGREEMENT_DESIGNS = [
    "realm16-t0",  # REALM with correction LUT
    "realm4-t9",  # heavily truncated REALM
    "calm",  # pure Mitchell-family log multiplier
    "alm-soa-m6",  # Mitchell with approximate adder
    "drum-k8",  # dynamic range truncation
    "drum-k5",
    "accurate",
]


class TestOracleAgreement:
    @pytest.mark.parametrize("design", AGREEMENT_DESIGNS)
    def test_all_layers_agree(self, design):
        result = fuzz(design, 768, seed=7)
        assert result.ok, render_text(result)
        assert result.total_divergences == 0
        assert "model" in result.layers
        assert "rtl" in result.layers
        assert "serve" in result.layers
        assert "formal" in result.layers
        assert "exact" in result.layers
        assert not result.skipped_layers

    def test_adhoc_realm_spec_skips_serve(self):
        result = fuzz("realm-16-m4-q5", 2048, seed=0)
        assert result.ok, render_text(result)
        assert "serve" in result.skipped_layers
        assert result.layers == ("model", "rtl", "kernel", "formal", "exact")

    def test_relations_follow_family(self):
        oracle = DifferentialOracle("realm16-t0")
        assert "commute" in oracle.relations
        assert "pow2-shift" in oracle.relations
        # REALM's correction LUT can overestimate: no underestimate bound
        assert "underestimate" not in oracle.relations
        truncating = DifferentialOracle("ssm-m8")
        assert "underestimate" in truncating.relations

    def test_family_sets_cover_known_structures(self):
        # the metamorphic relation tables must track the registry families
        for name in ("realm16-t0", "calm", "mbm-t0"):
            assert build(name).family in POW2_SHIFT_FAMILIES
        for name in ("drum-k8", "ssm-m8", "essm8"):
            assert build(name).family not in POW2_SHIFT_FAMILIES
        assert build("am1-nb9").family not in COMMUTE_FAMILIES
        assert build("ssm-m9").family in UNDERESTIMATE_FAMILIES

    @given(pair=operand_pairs(16))
    @settings(max_examples=60, deadline=None)
    def test_check_pair_clean_on_healthy_design(self, pair):
        # property sweep: no single pair trips any relation on REALM
        oracle = _MODEL_ONLY_ORACLE
        a, b = pair
        for kind, name in (
            ("relation", "commute"),
            ("relation", "pow2-shift"),
            ("layer", "exact"),
        ):
            assert not oracle.check_pair(kind, name, a, b)


# model+exact oracle reused by the property sweep (module-level so
# hypothesis examples share the built model)
_MODEL_ONLY_ORACLE = DifferentialOracle("realm16-t0", layers=("model", "exact"))


# ---------------------------------------------------------------------------
# injected bugs are caught and shrunk
# ---------------------------------------------------------------------------


class TestInjectedBugs:
    def test_monkeypatched_model_is_caught_and_shrunk(self, monkeypatch):
        from repro.core.realm import RealmMultiplier

        original = RealmMultiplier.multiply

        def broken(self, a, b):
            products = original(self, a, b)
            a = np.asarray(a)
            b = np.asarray(b)
            return np.where((a > 0) & (b > 0), products + 1, products)

        monkeypatch.setattr(RealmMultiplier, "multiply", broken)
        result = fuzz("realm-8-m4-q5", 1024, seed=0)
        assert not result.ok
        assert result.total_divergences > 0
        # the divergence shrinks to the smallest pair that triggers it
        assert result.shrunk
        for entry in result.shrunk:
            assert entry["shrunk_a"] == 1
            assert entry["shrunk_b"] == 1

    def test_chaos_corrupt_fault_breaks_model(self, tmp_path):
        spec = chaos.FaultSpec(kind="corrupt", block=0, design="realm-8-m4-q5")
        chaos.install([spec], tmp_path / "claims")
        try:
            result = fuzz("realm-8-m4-q5", 1024, seed=0, cache=tmp_path / "cache")
        finally:
            chaos.uninstall()
        assert not result.ok
        for entry in result.shrunk:
            assert entry["shrunk_a"].bit_length() <= 8
            assert entry["shrunk_b"].bit_length() <= 8
        # counterexamples persisted under the cache dir for replay
        assert result.counterexample_path is not None
        saved = json.loads(open(result.counterexample_path).read())
        assert saved["design"] == "realm-8-m4-q5"
        assert saved["counterexamples"] == result.shrunk

    def test_chaos_fault_for_other_design_is_ignored(self, tmp_path):
        spec = chaos.FaultSpec(kind="corrupt", block=0, design="some-other-id")
        chaos.install([spec], tmp_path / "claims")
        try:
            result = fuzz("realm-8-m4-q5", 512, seed=0)
        finally:
            chaos.uninstall()
        assert result.ok


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------


class TestShrinker:
    def test_deterministic(self):
        check = lambda a, b: a >= 5 and b >= 3  # noqa: E731
        first = shrink_pair(check, 60000, 41234)
        second = shrink_pair(check, 60000, 41234)
        assert first == second

    def test_locally_minimal(self):
        check = lambda a, b: a >= 5 and b >= 3  # noqa: E731
        a, b = shrink_pair(check, 60000, 41234)
        assert check(a, b)
        # no single halving, bit-clear or decrement may still fail the check
        assert not check(a >> 1, b)
        assert not check(a, b >> 1)
        assert not check(a - 1, b)
        assert not check(a, b - 1)

    def test_single_bit_bug_shrinks_to_that_bit(self):
        check = lambda a, b: bool(a & 0b100) and b > 0  # noqa: E731
        a, b = shrink_pair(check, 0xFFFF, 0xFFFF)
        assert a == 0b100
        assert b == 1

    def test_non_diverging_pair_unchanged(self):
        assert shrink_pair(lambda a, b: False, 123, 456) == (123, 456)

    def test_oracle_check_pair_drives_shrink(self):
        # underestimate violation on a patched truncating model
        oracle = DifferentialOracle("realm-8-m4-q5", layers=("model", "exact"))
        assert not oracle.check_pair("layer", "exact", 0, 77)
        assert not oracle.check_pair("layer", "exact", 1 << 4, 0)


# ---------------------------------------------------------------------------
# coverage map: hand-counted 4-bit grid
# ---------------------------------------------------------------------------


class TestCoverageMap4Bit:
    """Exactness against hand counts for ``N=4, M=4``.

    Per operand: interval k leaves k variable fraction bits, so segment
    reachability is k=0 -> {0}, k=1 -> {0, 2}, k=2 and 3 -> {0, 1, 2, 3}:
    11 reachable ``(k, i)`` combos, hence ``11^2 = 121`` joint cells.
    """

    def test_reachable_cell_count(self):
        cm = CoverageMap(4, 4)
        assert int(np.count_nonzero(cm.reachable_mask())) == 121
        assert cm.uncovered().shape[0] == 121

    def test_reachable_segments_per_interval(self):
        cm = CoverageMap(4, 4)
        assert cm.reachable_segments(0).tolist() == [0]
        assert cm.reachable_segments(1).tolist() == [0, 2]
        assert cm.reachable_segments(2).tolist() == [0, 1, 2, 3]
        assert cm.reachable_segments(3).tolist() == [0, 1, 2, 3]

    def test_exhaustive_sweep_reaches_every_cell(self):
        cm = CoverageMap(4, 4)
        values = np.arange(16, dtype=np.int64)
        a, b = np.meshgrid(values, values, indexing="ij")
        cm.update(a.ravel(), b.ravel())
        assert cm.segment_cell_coverage() == 1.0
        assert cm.uncovered().size == 0
        # 15 nonzero values per operand -> 225 nonzero pairs, 31 with a zero
        assert int(cm.cells.sum()) == 225
        assert cm.zero_pairs == 31
        assert cm.pairs == 256

    def test_specific_coordinates(self):
        cm = CoverageMap(4, 4)
        # a=5=0b101: k=2, fraction '01' aligns to 0b010, segment 0b010>>1=1
        ka, kb, i, j, pa, pb, nonzero = cm.coordinates([5], [1])
        assert (int(ka[0]), int(i[0])) == (2, 1)
        # b=1: k=0, only segment 0 reachable
        assert (int(kb[0]), int(j[0])) == (0, 0)
        assert bool(nonzero[0])

    def test_hit_counts_accumulate(self):
        cm = CoverageMap(4, 4)
        assert cm.update([5, 5], [1, 1]) == 1  # one new cell, hit twice
        assert cm.cells[2, 0, 1, 0] == 2
        assert cm.update([5], [1]) == 0  # already covered

    def test_report_is_json_stable(self):
        cm = CoverageMap(4, 4)
        cm.update([5, 9], [3, 12])
        first = json.dumps(cm.report(), sort_keys=True)
        second = json.dumps(cm.report(), sort_keys=True)
        assert first == second
        assert json.loads(first)["segment_cells"]["reachable"] == 121

    def test_rejects_non_power_of_two_m(self):
        with pytest.raises(ValueError, match="power of two"):
            CoverageMap(8, 5)

    def test_default_segments_follows_design(self):
        assert default_segments(build("realm16-t0")) == 16
        assert default_segments(build("drum-k8")) == 4

    def test_16bit_reachable_count_matches_formula(self):
        # N=16, M=4: per-operand combos 1+2+4*14 = 59 -> 59^2 joint cells
        cm = CoverageMap(16, 4)
        assert int(np.count_nonzero(cm.reachable_mask())) == 59 * 59


# ---------------------------------------------------------------------------
# determinism and worker invariance
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        first = fuzz("realm-8-m4-q5", 800, seed=11)
        second = fuzz("realm-8-m4-q5", 800, seed=11)
        assert render_json(first) == render_json(second)

    def test_worker_count_invariance(self):
        serial = fuzz("realm-8-m4-q5", 600, seed=3)
        pooled = fuzz("realm-8-m4-q5", 600, seed=3, workers=2)
        assert render_json(serial) == render_json(pooled)

    def test_different_seeds_differ(self):
        first = fuzz("realm-8-m4-q5", 400, seed=0)
        second = fuzz("realm-8-m4-q5", 400, seed=1)
        # both clean, but the evaluated pair streams must differ
        assert first.ok and second.ok
        assert render_json(first) != render_json(second)

    def test_acceptance_slice_full_cover_quickly(self):
        # the tier-1 slice of the acceptance criterion: full cover of the
        # 16-bit m=4 grid well inside the budget, zero divergences
        result = fuzz("realm-16-m4-q5", 20000, seed=0)
        assert result.ok
        assert result.coverage.segment_cell_coverage() >= 0.95
        assert result.full_cover
        assert result.pairs <= 20000


# ---------------------------------------------------------------------------
# report rendering
# ---------------------------------------------------------------------------


class TestReport:
    def test_build_report_structure(self):
        result = fuzz("realm-8-m4-q5", 400, seed=5)
        report = build_report(result)
        assert report["ok"] is True
        assert report["design"] == "realm-8-m4-q5"
        assert report["coverage"]["segment_cells"]["reachable"] > 0
        assert report["divergences"]["total"] == 0
        json.dumps(report)  # serializable as-is

    def test_render_text_contains_table_and_verdict(self):
        result = fuzz("realm-8-m4-q5", 400, seed=5)
        text = render_text(result)
        assert "i\\j" in text
        assert "verdict     OK" in text

    def test_failing_report_lists_shrunk_pairs(self, monkeypatch, tmp_path):
        from repro.core.realm import RealmMultiplier

        original = RealmMultiplier.multiply

        def broken(self, a, b):
            products = original(self, a, b)
            a = np.asarray(a)
            b = np.asarray(b)
            return np.where((a > 0) & (b > 0), products + 1, products)

        monkeypatch.setattr(RealmMultiplier, "multiply", broken)
        result = fuzz("realm-8-m4-q5", 400, seed=5)
        text = render_text(result)
        assert "verdict     FAIL" in text
        assert "shrunk counterexample" in text
        report = build_report(result)
        assert report["ok"] is False
        assert report["divergences"]["shrunk"]


# ---------------------------------------------------------------------------
# nightly: full-budget sweep over one design per registry family
# ---------------------------------------------------------------------------

FAMILY_REPRESENTATIVES = sorted(
    {build(name).family: name for name in ALL_IDS}.values()
)


@pytest.mark.nightly
@pytest.mark.skipif(
    not os.environ.get("REPRO_NIGHTLY"),
    reason="full-budget conformance sweep runs in the nightly job "
    "(set REPRO_NIGHTLY=1)",
)
@pytest.mark.parametrize("design", FAMILY_REPRESENTATIVES)
def test_nightly_full_budget_conformance(design):
    result = fuzz(design, 1 << 16, seed=0)
    assert result.ok, render_text(result)
    assert result.coverage.segment_cell_coverage() >= 0.95
