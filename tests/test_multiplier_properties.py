"""Cross-design property tests: invariants every multiplier must satisfy.

These run over the whole registry, so any future design added to the
library is automatically held to the same contracts the paper's designs
satisfy: zero handling, output bounds, determinism, shape preservation,
and (for the structurally symmetric families) commutativity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multipliers.registry import build
from tests.strategies import (
    ALL_IDS,
    COMMUTATIVE_IDS,
    POW2_EXACT_IDS,
    UNDERESTIMATE_IDS,
    exponent,
    operand,
)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(77)
    a = rng.integers(0, 1 << 16, 2000)
    b = rng.integers(0, 1 << 16, 2000)
    return a, b


@pytest.mark.parametrize("name", ALL_IDS)
def test_zero_annihilates(name):
    multiplier = build(name)
    assert int(multiplier.multiply(0, 54321)) == 0
    assert int(multiplier.multiply(54321, 0)) == 0
    assert int(multiplier.multiply(0, 0)) == 0


@pytest.mark.parametrize("name", ALL_IDS)
def test_output_bounds(name, vectors):
    # approximate products stay within the physical output width:
    # non-negative and below 2^(2N+1) (the REALM/MBM overflow bit)
    a, b = vectors
    products = build(name).multiply(a, b)
    assert products.min() >= 0
    assert products.max() < (1 << 33)


@pytest.mark.parametrize("name", ALL_IDS)
def test_deterministic_and_shape_preserving(name, vectors):
    multiplier = build(name)
    a, b = vectors
    first = multiplier.multiply(a, b)
    second = multiplier.multiply(a, b)
    assert np.array_equal(first, second)
    assert first.shape == a.shape
    assert first.dtype == np.int64
    # 2-D shapes work too
    grid = multiplier.multiply(a[:16].reshape(4, 4), b[:16].reshape(4, 4))
    assert grid.shape == (4, 4)
    assert np.array_equal(grid.ravel(), first[:16])


@pytest.mark.parametrize("name", COMMUTATIVE_IDS)
def test_commutative(name, vectors):
    multiplier = build(name)
    a, b = vectors
    assert np.array_equal(multiplier.multiply(a, b), multiplier.multiply(b, a))


@pytest.mark.parametrize("name", ALL_IDS)
def test_relative_error_bounded_by_design_class(name, vectors):
    # no design in the library errs by more than 80% on nonzero products
    # (the worst published row is SSM8's -72.7%)
    a, b = vectors
    products = build(name).multiply(a, b)
    exact = a * b
    nonzero = exact > 0
    errors = np.abs(products[nonzero] - exact[nonzero]) / exact[nonzero]
    assert errors.max() < 0.80


@pytest.mark.parametrize("name", ["realm16-t0", "calm", "drum-k8", "implm-ea"])
def test_one_is_near_identity(name):
    # multiplying by 1 reproduces the operand up to the design's forced
    # rounding bits (exact for the log designs, which see fraction 0)
    multiplier = build(name)
    values = np.array([1, 2, 1000, 65535], dtype=np.int64)
    products = multiplier.multiply(values, np.ones_like(values))
    assert np.all(np.abs(products - values) <= values // 8 + 1)  # loose cap
    # and exactly for powers of two on Mitchell-family designs
    if name in ("calm", "implm-ea"):
        assert int(multiplier.multiply(1024, 1)) == 1024


class TestRegistryInvariants:
    """Hypothesis sweeps of the paper-level contracts over the registry."""

    @given(st.sampled_from(COMMUTATIVE_IDS), operand, operand)
    @settings(max_examples=150, deadline=None)
    def test_commutative_on_random_operands(self, name, a, b):
        multiplier = build(name)
        assert int(multiplier.multiply(a, b)) == int(multiplier.multiply(b, a))

    @given(st.sampled_from(POW2_EXACT_IDS), exponent, exponent)
    @settings(max_examples=150, deadline=None)
    def test_power_of_two_products_are_exact(self, name, i, j):
        # Mitchell's log error vanishes when both fractions are zero
        multiplier = build(name)
        assert int(multiplier.multiply(1 << i, 1 << j)) == 1 << (i + j)

    @given(st.sampled_from(ALL_IDS), operand)
    @settings(max_examples=150, deadline=None)
    def test_zero_annihilates_any_operand(self, name, x):
        multiplier = build(name)
        assert int(multiplier.multiply(x, 0)) == 0
        assert int(multiplier.multiply(0, x)) == 0

    @given(st.sampled_from(POW2_EXACT_IDS), exponent)
    @settings(max_examples=120, deadline=None)
    def test_identity_on_powers_of_two(self, name, i):
        # 1 is 2^0, so identity multiplication is a pow2-exact product
        multiplier = build(name)
        assert int(multiplier.multiply(1 << i, 1)) == 1 << i
        assert int(multiplier.multiply(1, 1 << i)) == 1 << i

    @given(st.sampled_from(UNDERESTIMATE_IDS), operand, operand)
    @settings(max_examples=150, deadline=None)
    def test_truncating_designs_never_overestimate(self, name, a, b):
        multiplier = build(name)
        assert int(multiplier.multiply(a, b)) <= a * b

    @given(
        st.sampled_from([n for n in ALL_IDS if n.startswith("scaletrim")]),
        operand,
        operand,
    )
    @settings(max_examples=150, deadline=None)
    def test_compensation_never_increases_absolute_error(self, name, a, b):
        # scaleTRIM's LUT is a provable lower bound of the dropped
        # cross-term, so switching compensation on moves every product
        # toward (never past) the exact value: the compensated result
        # dominates the c=0 sibling and stays an underestimate
        from repro.multipliers.scaletrim import ScaleTrimMultiplier

        compensated = build(name)
        plain = ScaleTrimMultiplier(16, t=compensated.t, c=0)
        got = int(compensated.multiply(a, b))
        assert int(plain.multiply(a, b)) <= got <= a * b


class TestScalarArrayConsistency:
    @given(
        st.sampled_from(["realm8-t3", "calm", "drum-k6", "ssm-m9", "intalp-l2"]),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_scalar_equals_vector_element(self, name, a, b):
        multiplier = build(name)
        scalar = int(multiplier.multiply(a, b))
        vector = int(multiplier.multiply(np.array([a, 77]), np.array([b, 88]))[0])
        assert scalar == vector


class TestWorkloadCharacterization:
    def test_gaussian_workload(self):
        from repro.analysis.montecarlo import characterize_workload, gaussian_sampler

        realm = build("realm16-t0")
        metrics = characterize_workload(
            realm, gaussian_sampler(16), samples=1 << 18
        )
        assert metrics.mean_error < 1.0  # still REALM-class accuracy

    def test_lognormal_worse_than_uniform_for_truncators(self):
        # heavy-tailed (small-operand-rich) inputs punish the designs whose
        # error concentrates on small operands
        from repro.analysis.montecarlo import (
            characterize,
            characterize_workload,
            lognormal_sampler,
        )

        ssm = build("ssm-m8")
        uniform = characterize(ssm, samples=1 << 18)
        heavy = characterize_workload(
            ssm, lognormal_sampler(16), samples=1 << 18
        )
        # under uniform inputs almost everything uses the high segment;
        # the heavy tail exercises the exact low segment too — the two
        # distributions must measurably differ
        assert abs(heavy.mean_error - uniform.mean_error) > 0.1

    def test_sampler_determinism(self):
        from repro.analysis.montecarlo import characterize_workload, gaussian_sampler

        realm = build("realm4-t0")
        sampler = gaussian_sampler(16)
        first = characterize_workload(realm, sampler, samples=1 << 16, seed=3)
        second = characterize_workload(realm, sampler, samples=1 << 16, seed=3)
        assert first == second


class TestOperandAliasing:
    """Broadcast views are read-only: in-place mutation inside a model
    can never corrupt a sibling element or the caller's arrays.

    Regression: ``np.broadcast_arrays`` returns writeable views, and a
    scalar broadcast against an array aliases one memory cell across
    every element — a single in-place write in a ``_multiply``
    implementation would have silently corrupted the whole batch (and,
    for same-shape inputs, the caller's own arrays).
    """

    def test_as_operands_views_are_read_only(self):
        from repro.multipliers.base import as_operands

        a, b = as_operands(7, np.array([1, 2, 3]), 8)
        assert not a.flags.writeable
        assert not b.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 99

    def test_caller_arrays_stay_writeable(self):
        from repro.multipliers.base import as_operands

        mine_a = np.array([1, 2, 3])
        mine_b = np.array([4, 5, 6])
        as_operands(mine_a, mine_b, 8)
        assert mine_a.flags.writeable
        assert mine_b.flags.writeable
        mine_a[0] = 42  # still mine to mutate

    @given(
        st.sampled_from(ALL_IDS),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_scalar_broadcast_never_corrupts_shared_operand(self, name, s):
        # scalar (x) array: every element of the broadcast scalar aliases
        # one cell, so any in-place write would corrupt its siblings and
        # show up as a mismatch against the element-wise evaluation
        multiplier = build(name)
        other = np.array([0, 1, s, (1 << 16) - 1, 12345])
        batch = multiplier.multiply(s, other)
        singles = np.array(
            [int(multiplier.multiply(s, int(x))) for x in other]
        )
        assert np.array_equal(batch, singles)
        batch_rev = multiplier.multiply(other, s)
        singles_rev = np.array(
            [int(multiplier.multiply(int(x), s)) for x in other]
        )
        assert np.array_equal(batch_rev, singles_rev)


class TestBitwidthBoundary:
    """``MAX_BITWIDTH = 31`` is exactly what the int64 substrate admits
    (see ``tests/test_logic.py::TestWidthInvariants`` for the bus-side
    statement of the same invariant)."""

    def test_n31_accurate_model_works(self):
        from repro.multipliers.accurate import AccurateMultiplier

        model = AccurateMultiplier(bitwidth=31)
        top = (1 << 31) - 1
        assert int(model.multiply(top, top)) == top * top

    def test_n31_products_fit_int64(self):
        # the worst 31-bit product occupies 62 bits; with REALM's
        # overflow bit that is 63 — the last width int64 represents
        top = (1 << 31) - 1
        assert (top * top).bit_length() == 62

    def test_n32_rejected(self):
        from repro.multipliers.accurate import AccurateMultiplier

        with pytest.raises(ValueError, match="bitwidth must be <= 31"):
            AccurateMultiplier(bitwidth=32)

    def test_realm_at_max_width(self):
        from repro.core.realm import RealmMultiplier

        model = RealmMultiplier(bitwidth=31, m=4, t=10, q=5)
        a = np.array([0, 1, (1 << 31) - 1, 1 << 30])
        products = model.multiply(a, a)
        assert products.min() >= 0  # no int64 wrap at the widest width
