"""Tests for the classical log-based multiplier (cALM, Mitchell [8])."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.analysis.metrics import compute_metrics
from repro.multipliers.mitchell import MitchellMultiplier, antilog, log_operands


class TestLogOperands:
    def test_decomposition(self):
        ka, kb, xa, xb, nonzero = log_operands(
            np.array([96]), np.array([1]), 16
        )
        assert int(ka[0]) == 6  # 96 = 2^6 * 1.5
        assert int(xa[0]) == 1 << 14  # x = 0.5
        assert int(kb[0]) == 0 and int(xb[0]) == 0
        assert bool(nonzero[0])

    def test_zero_flagged(self):
        *_, nonzero = log_operands(np.array([0, 5]), np.array([5, 5]), 16)
        assert nonzero.tolist() == [False, True]


class TestAntilog:
    def test_exact_power(self):
        # log value 5.0 -> 32
        assert int(antilog(np.array([5 << 15]), 15)[0]) == 32

    def test_linear_mantissa(self):
        # log value 3 + 0.5 -> 8 * 1.5 = 12
        value = (3 << 15) | (1 << 14)
        assert int(antilog(np.array([value]), 15)[0]) == 12

    def test_small_value_floors(self):
        # log value 0.75 -> floor(1.75 * 2^0 ... ) with fraction below LSB
        value = 3 << 13  # characteristic 0, fraction 0.75
        assert int(antilog(np.array([value]), 15)[0]) == 1


class TestMitchell:
    def test_exact_at_powers_of_two(self):
        calm = MitchellMultiplier()
        for a in (1, 2, 64, 32768):
            for b in (1, 8, 1024):
                assert int(calm.multiply(a, b)) == a * b

    def test_never_overestimates(self, operands16):
        calm = MitchellMultiplier()
        a, b = operands16
        assert np.all(calm.multiply(a, b) <= a * b)

    def test_worst_case_bound(self, operands16):
        calm = MitchellMultiplier()
        a, b = operands16
        exact = a * b
        nonzero = exact > 0
        errors = (calm.multiply(a, b)[nonzero] - exact[nonzero]) / exact[nonzero]
        assert errors.min() >= -1.0 / 9.0 - 1e-9

    def test_table_one_row(self):
        rng = np.random.default_rng(2020)
        a = rng.integers(0, 1 << 16, 1 << 21)
        b = rng.integers(0, 1 << 16, 1 << 21)
        calm = MitchellMultiplier()
        metrics = compute_metrics(calm.multiply(a, b), a * b)
        row = paper.TABLE1["calm"]
        assert metrics.bias == pytest.approx(row.bias, abs=0.02)
        assert metrics.mean_error == pytest.approx(row.mean_error, abs=0.02)
        assert metrics.peak_min == pytest.approx(row.peak_min, abs=0.05)
        assert metrics.peak_max == pytest.approx(0.0, abs=1e-9)
        assert metrics.variance == pytest.approx(row.variance, abs=0.1)

    def test_zero_operands(self):
        calm = MitchellMultiplier()
        assert int(calm.multiply(0, 999)) == 0
        assert int(calm.multiply(999, 0)) == 0

    @given(
        st.integers(min_value=1, max_value=(1 << 16) - 1),
        st.integers(min_value=1, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_underestimate_property(self, a, b):
        calm = MitchellMultiplier()
        product = int(calm.multiply(a, b))
        assert product <= a * b
        assert product >= a * b * (1.0 - 1.0 / 9.0) - 1  # -1 for the floor

    def test_other_bitwidths(self):
        for n in (8, 12, 24):
            calm = MitchellMultiplier(bitwidth=n)
            high = (1 << n) - 1
            assert int(calm.multiply(1 << (n - 1), 2)) == 1 << n
            assert int(calm.multiply(high, high)) <= high * high
