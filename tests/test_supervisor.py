"""Deterministic tests for the supervised shard fleet.

Two tiers mirror the shard flavours:

* :class:`~repro.serve.shard.LocalShard` fleets — no processes, no
  sockets, no timers — drive every supervisor code path that doesn't
  need OS isolation: consistent-hash routing, sub-id remapping under
  concurrent identical client ids, corrupt-reply rejection, circuit
  breakers (with an injectable clock), restart budgets, degradation,
  drain semantics, rolling restart.
* :class:`~repro.serve.shard.ProcessShard` fleets prove the full
  contract against real worker processes with chaos plans injected via
  the environment: a deterministic crash and a deterministic hang are
  each detected, the shard restarted, and every admitted request
  answered bit-identically to direct ``Multiplier.multiply`` — zero
  dropped connections.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.analysis.chaos import CHAOS_ENV, ChaosPlan, FaultSpec
from repro.multipliers.registry import build
from repro.serve import (
    HashRing,
    InProcessClient,
    LocalShard,
    ProcessShard,
    ShardConfig,
    Supervisor,
    SupervisorPolicy,
)
from repro.serve.supervisor import CircuitBreaker

run = asyncio.run

DESIGNS = ["realm16-t4", "drum-k6", "accurate", "mbm-t4"]


def direct(design: str, a, b) -> list[int]:
    model = build(design)
    products = model.multiply(
        np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
    )
    return [int(v) for v in np.atleast_1d(products)]


def quiet_policy(**overrides) -> SupervisorPolicy:
    """A policy whose jitter/backoff never actually sleeps."""
    defaults = dict(
        restart_base=1e-9,
        restart_cap=1e-9,
        jitter=lambda low, high: low,
    )
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------


class TestHashRing:
    def test_deterministic_and_complete_order(self):
        labels = [f"shard-{i}" for i in range(5)]
        ring_a = HashRing(labels, replicas=32)
        ring_b = HashRing(labels, replicas=32)
        for key in ("alpha", "beta", "gamma", "a-long-fingerprint-key"):
            order = ring_a.order(key)
            assert order == ring_b.order(key)
            assert sorted(order) == sorted(labels)  # all, owner first

    def test_placement_known_before_any_shard_exists(self):
        # the property chaos schedules rely on: ring order is a pure
        # function of the label set, so two Supervisor instances agree
        labels = ["shard-0", "shard-1", "shard-2"]
        sup_a = Supervisor([LocalShard(l) for l in labels])
        sup_b = Supervisor([LocalShard(l) for l in labels])
        for design in DESIGNS:
            assert sup_a.route(design) == sup_b.route(design)

    def test_spread(self):
        ring = HashRing([f"shard-{i}" for i in range(4)], replicas=64)
        owners = {ring.owner(f"key-{i}") for i in range(64)}
        assert len(owners) == 4  # every shard owns something

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing([])


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trip_and_half_open_probe(self):
        clock = {"t": 0.0}
        policy = quiet_policy(
            breaker_threshold=3, breaker_reset=5.0, clock=lambda: clock["t"]
        )
        breaker = CircuitBreaker(policy)
        assert breaker.allows()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allows()  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()
        clock["t"] = 4.9
        assert not breaker.allows()
        clock["t"] = 5.0
        assert breaker.allows()  # half-open probe admitted
        assert breaker.state == "half-open"
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == "open"
        clock["t"] = 10.0
        assert breaker.allows()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_consecutive_failures_only(self):
        breaker = CircuitBreaker(quiet_policy(breaker_threshold=2))
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # success resets the streak


# ----------------------------------------------------------------------
# Supervised fleet over LocalShards
# ----------------------------------------------------------------------


async def local_fleet(n=3, policy=None):
    shards = [LocalShard(f"shard-{i}") for i in range(n)]
    supervisor = Supervisor(shards, policy=policy or quiet_policy())
    await supervisor.up()
    return supervisor, shards


class TestSupervisedRouting:
    @pytest.mark.parametrize("design", DESIGNS)
    def test_bit_identical_to_direct(self, design):
        async def scenario():
            supervisor, _ = await local_fleet()
            client = InProcessClient(supervisor)
            rng = np.random.default_rng(7)
            for _ in range(5):
                n = int(rng.integers(1, 9))
                a = rng.integers(0, 1 << 16, size=n).tolist()
                b = rng.integers(0, 1 << 16, size=n).tolist()
                assert await client.multiply(design, a, b) == direct(design, a, b)
            await supervisor.drain()

        run(scenario())

    def test_same_client_ids_never_cross_wire(self):
        # two fronts reusing id=1 concurrently: sub-id remapping keeps
        # the replies tied to their own operands, and each reply echoes
        # the id its requester sent
        async def scenario():
            supervisor, _ = await local_fleet()
            jobs = [(3, 5), (11, 13), (100, 200), (40000, 50000)]
            responses = await asyncio.gather(
                *(
                    supervisor.handle(
                        {"op": "multiply", "design": "accurate",
                         "a": a, "b": b, "id": 1}
                    )
                    for a, b in jobs
                )
            )
            for (a, b), response in zip(jobs, responses):
                assert response["id"] == 1
                assert response["ok"] is True
                assert response["result"]["product"] == a * b
            await supervisor.drain()

        run(scenario())

    def test_unknown_design_is_structured(self):
        async def scenario():
            supervisor, _ = await local_fleet()
            response = await supervisor.handle(
                {"op": "multiply", "design": "nope", "a": 1, "b": 2, "id": 9}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "unknown-design"
            await supervisor.drain()

        run(scenario())

    def test_designs_ping_status_answer_locally(self):
        async def scenario():
            supervisor, _ = await local_fleet()
            client = InProcessClient(supervisor)
            listing = await client.designs(prefix="realm16")
            assert all(d["id"].startswith("realm16") for d in listing)
            ping = await client.ping()
            assert ping["role"] == "supervisor"
            assert ping["shards_up"] == 3
            status = await client.call({"op": "status"})
            assert status["ready"] is True
            assert set(status["shards"]) == {"shard-0", "shard-1", "shard-2"}
            await supervisor.drain()

        run(scenario())


class TestFailureSemantics:
    def test_dead_owner_redirects_to_successor(self):
        async def scenario():
            supervisor, shards = await local_fleet()
            owner = supervisor.route("realm16-t4")[0]
            supervisor.shards[owner].kill()
            client = InProcessClient(supervisor)
            # still answered, bit-identically, by a ring successor
            assert await client.multiply("realm16-t4", [9], [9]) == direct(
                "realm16-t4", [9], [9]
            )
            await supervisor.drain()

        run(scenario())

    def test_check_fleet_restarts_dead_shard(self):
        async def scenario():
            supervisor, shards = await local_fleet()
            shards[1].kill()
            assert not shards[1].alive
            await supervisor.check_fleet()
            assert shards[1].alive
            assert supervisor.restart_counts["shard-1"] == 1
            await supervisor.drain()

        run(scenario())

    def test_restart_budget_exhausts_to_permanent_down(self):
        async def scenario():
            supervisor, shards = await local_fleet(
                policy=quiet_policy(max_restarts=2)
            )
            for expected in (1, 2):
                shards[0].kill()
                await supervisor.check_fleet()
                assert supervisor.restart_counts["shard-0"] == expected
            shards[0].kill()
            await supervisor.check_fleet()
            assert supervisor.restart_counts["shard-0"] == 2  # budget spent
            status = await supervisor.handle({"op": "status", "id": 1})
            assert status["result"]["shards"]["shard-0"]["failed"] is True
            await supervisor.drain()

        run(scenario())

    def test_degraded_multiply_when_fleet_exhausted(self):
        async def scenario():
            supervisor, shards = await local_fleet(
                n=2, policy=quiet_policy(max_restarts=0, allow_degraded=True)
            )
            for shard in shards:
                shard.kill()
            client = InProcessClient(supervisor)
            # answered in-parent; still bit-identical (same model)
            assert await client.multiply("drum-k6", [777], [888]) == direct(
                "drum-k6", [777], [888]
            )
            status = await client.call({"op": "status"})
            assert status["ready"] is True  # degraded still counts as ready
            await supervisor.drain()

        run(scenario())

    def test_shard_down_when_degradation_disabled(self):
        async def scenario():
            supervisor, shards = await local_fleet(
                n=2, policy=quiet_policy(max_restarts=0, allow_degraded=False)
            )
            for shard in shards:
                shard.kill()
            response = await supervisor.handle(
                {"op": "multiply", "design": "accurate", "a": 1, "b": 2, "id": 5}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "shard-down"
            status = await supervisor.handle({"op": "status", "id": 6})
            assert status["result"]["ready"] is False
            await supervisor.drain()

        run(scenario())

    def test_characterize_gets_shard_down_not_degraded(self):
        async def scenario():
            supervisor, shards = await local_fleet(
                n=2, policy=quiet_policy(max_restarts=0, allow_degraded=True)
            )
            for shard in shards:
                shard.kill()
            response = await supervisor.handle(
                {"op": "characterize", "design": "accurate",
                 "samples": 16, "id": 2}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "shard-down"
            await supervisor.drain()

        run(scenario())

    def test_deadline_exceeded_is_structured(self):
        class StuckShard:
            """A shard handle whose requests never complete."""

            name = "shard-0"
            alive = True

            async def start(self):
                pass

            async def stop(self):
                pass

            async def request(self, obj):
                await asyncio.Event().wait()

        async def scenario():
            supervisor = Supervisor(
                [StuckShard()],
                policy=quiet_policy(
                    request_deadline=0.02, allow_degraded=False
                ),
            )
            await supervisor.up()
            response = await supervisor.handle(
                {"op": "multiply", "design": "accurate", "a": 1, "b": 2, "id": 3}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "deadline-exceeded"
            await supervisor.drain()

        run(scenario())

    def test_corrupt_reply_is_rejected_and_rerouted(self, tmp_path):
        # chaos 'corrupt' truncates the owner's product vector; the
        # supervisor's validation must reject it and the ring successor
        # must produce the honest answer
        async def scenario():
            supervisor, _ = await local_fleet()
            owner = supervisor.route("realm16-t4")[0]
            os.environ[CHAOS_ENV] = ChaosPlan(
                (FaultSpec("corrupt", 0, design=owner),), str(tmp_path)
            ).to_json()
            try:
                client = InProcessClient(supervisor)
                got = await client.multiply("realm16-t4", [5, 6], [7, 8])
                assert got == direct("realm16-t4", [5, 6], [7, 8])
                assert supervisor.breakers[owner].failures == 1
            finally:
                del os.environ[CHAOS_ENV]
            await supervisor.drain()

        run(scenario())

    def test_breaker_routes_around_flapping_shard(self, tmp_path):
        async def scenario():
            clock = {"t": 0.0}
            supervisor, _ = await local_fleet(
                policy=quiet_policy(
                    breaker_threshold=2,
                    breaker_reset=100.0,
                    clock=lambda: clock["t"],
                )
            )
            owner = supervisor.route("realm16-t4")[0]
            os.environ[CHAOS_ENV] = ChaosPlan(
                tuple(
                    FaultSpec("corrupt", i, design=owner) for i in range(2)
                ),
                str(tmp_path),
            ).to_json()
            try:
                client = InProcessClient(supervisor)
                for _ in range(2):  # two corrupt replies trip the breaker
                    assert await client.multiply(
                        "realm16-t4", [5], [7]
                    ) == direct("realm16-t4", [5], [7])
                assert supervisor.breakers[owner].state == "open"
                # while open, the owner is skipped entirely: its multiply
                # ordinal counter stays put across further traffic
                seq_before = supervisor.shards[owner].service._multiply_seq
                for _ in range(3):
                    await client.multiply("realm16-t4", [5], [7])
                assert (
                    supervisor.shards[owner].service._multiply_seq
                    == seq_before
                )
                # past breaker_reset the half-open probe readmits it
                clock["t"] = 100.0
                assert await client.multiply("realm16-t4", [5], [7]) == direct(
                    "realm16-t4", [5], [7]
                )
                assert supervisor.breakers[owner].state == "closed"
            finally:
                del os.environ[CHAOS_ENV]
            await supervisor.drain()

        run(scenario())


class TestLifecycle:
    def test_drain_refuses_new_work_answers_probes(self):
        async def scenario():
            supervisor, _ = await local_fleet()
            await supervisor.drain()
            refused = await supervisor.handle(
                {"op": "multiply", "design": "accurate", "a": 1, "b": 2, "id": 1}
            )
            assert refused["error"]["code"] == "shutting-down"
            ping = await supervisor.handle({"op": "ping", "id": 2})
            assert ping["ok"] is True
            status = await supervisor.handle({"op": "status", "id": 3})
            assert status["result"]["ready"] is False

        run(scenario())

    def test_rolling_restart_replaces_every_shard(self):
        async def scenario():
            supervisor, shards = await local_fleet()
            client = InProcessClient(supervisor)
            await supervisor.rolling_restart()
            assert all(shard.restarts == 1 for shard in shards)
            assert all(shard.alive for shard in shards)
            # maintenance restarts don't burn the failure budget
            assert all(v == 0 for v in supervisor.restart_counts.values())
            assert await client.multiply("accurate", 12, 12) == 144
            await supervisor.drain()

        run(scenario())

    def test_heartbeat_loop_runs_and_drains_cleanly(self):
        async def scenario():
            supervisor, shards = await local_fleet(
                policy=quiet_policy(heartbeat_interval=0.005)
            )
            supervisor.start()
            shards[2].kill()
            for _ in range(200):
                await asyncio.sleep(0.005)
                if shards[2].alive:
                    break
            assert shards[2].alive  # background loop restarted it
            await supervisor.drain()

        run(scenario())


# ----------------------------------------------------------------------
# Process shards + chaos: the integration contract
# ----------------------------------------------------------------------


def process_policy() -> SupervisorPolicy:
    return SupervisorPolicy(
        heartbeat_interval=0.1,
        heartbeat_timeout=0.5,
        max_heartbeat_misses=2,
        request_deadline=1.0,
        restart_base=0.01,
        restart_cap=0.05,
        allow_degraded=False,
    )


class TestProcessFleetChaos:
    def test_crash_detected_restarted_all_answered(self, tmp_path):
        async def scenario():
            shards = [ProcessShard(ShardConfig(f"shard-{i}")) for i in range(2)]
            supervisor = Supervisor(shards, policy=process_policy())
            owner = supervisor.route("realm16-t4")[0]
            os.environ[CHAOS_ENV] = ChaosPlan(
                (FaultSpec("crash", 1, design=owner),), str(tmp_path)
            ).to_json()
            try:
                await supervisor.up()
                client = InProcessClient(supervisor)
                pairs = [([7 + i], [9 + i]) for i in range(5)]
                for a, b in pairs:  # request 1 at the owner crashes it
                    assert await client.multiply("realm16-t4", a, b) == direct(
                        "realm16-t4", a, b
                    )
                await supervisor.check_fleet()
                assert supervisor.restart_counts[owner] == 1
                # the restarted owner serves again
                assert await client.multiply(
                    "realm16-t4", [123], [321]
                ) == direct("realm16-t4", [123], [321])
                await supervisor.drain()
            finally:
                del os.environ[CHAOS_ENV]

        run(scenario())

    def test_hang_detected_killed_restarted(self, tmp_path):
        async def scenario():
            shards = [ProcessShard(ShardConfig(f"shard-{i}")) for i in range(2)]
            supervisor = Supervisor(shards, policy=process_policy())
            owner = supervisor.route("realm16-t4")[0]
            os.environ[CHAOS_ENV] = ChaosPlan(
                (FaultSpec("hang", 0, design=owner, seconds=30.0),),
                str(tmp_path),
            ).to_json()
            try:
                await supervisor.up()
                client = InProcessClient(supervisor)
                # the owner's event loop blocks; the per-attempt deadline
                # fires and the successor answers — never a lost request
                got = await asyncio.wait_for(
                    client.multiply("realm16-t4", [3], [5]), timeout=10.0
                )
                assert got == direct("realm16-t4", [3], [5])
                # heartbeat misses accumulate to a kill + restart
                deadline = asyncio.get_running_loop().time() + 30.0
                while not supervisor.restart_counts[owner]:
                    assert asyncio.get_running_loop().time() < deadline
                    await supervisor.check_fleet()
                    await asyncio.sleep(0.1)
                assert supervisor.restart_counts[owner] == 1
                assert await client.multiply("realm16-t4", [3], [5]) == direct(
                    "realm16-t4", [3], [5]
                )
                await supervisor.drain()
            finally:
                del os.environ[CHAOS_ENV]

        run(scenario())
