"""Tests for netlist serialization and the equivalence checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.realm_rtl import realm_netlist
from repro.circuits.wallace import wallace_netlist
from repro.logic.netlist import Netlist
from repro.logic.serialize import check_equivalence, from_json, to_json
from repro.logic.sim import evaluate_words


class TestJsonRoundtrip:
    def test_function_preserved(self):
        original = wallace_netlist(8)
        original.prune()
        restored = from_json(to_json(original))
        rng = np.random.default_rng(71)
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        got = evaluate_words(
            restored, [restored.inputs[:8], restored.inputs[8:]], [a, b]
        )
        assert np.array_equal(got, a * b)

    def test_structure_preserved(self):
        original = realm_netlist(8, m=4, t=1)
        restored = from_json(to_json(original))
        assert restored.gate_count == original.gate_count
        assert restored.area() == pytest.approx(original.area())
        assert restored.name == original.name
        assert restored.inputs == original.inputs
        assert restored.outputs == original.outputs

    def test_restored_netlist_extensible(self):
        original = Netlist("t")
        a, b = original.new_input("a"), original.new_input("b")
        original.set_outputs([original.add("AND2", a, b)])
        restored = from_json(to_json(original))
        extra = restored.add("OR2", restored.inputs[0], restored.inputs[1])
        restored.set_outputs(restored.outputs + [extra])
        assert restored.gate_count == 2

    def test_rejects_bad_format(self):
        with pytest.raises(ValueError):
            from_json('{"format": 99}')

    def test_rejects_undriven_gate_input(self):
        text = to_json(wallace_netlist(2))
        import json

        document = json.loads(text)
        document["gates"][0]["inputs"] = [99999, 2]
        with pytest.raises(ValueError):
            from_json(json.dumps(document))

    def test_rejects_undriven_output(self):
        import json

        document = json.loads(to_json(wallace_netlist(2)))
        document["outputs"] = [424242]
        with pytest.raises(ValueError):
            from_json(json.dumps(document))


class TestEquivalenceChecker:
    def test_exhaustive_pass(self):
        netlist = wallace_netlist(4)
        netlist.prune()
        result = check_equivalence(
            netlist,
            lambda a, b: a * b,
            [netlist.inputs[:4], netlist.inputs[4:]],
        )
        assert result
        assert result.vectors_checked == 256
        assert result.counterexample is None

    def test_random_mode_pass(self):
        netlist = wallace_netlist(12)
        netlist.prune()
        result = check_equivalence(
            netlist,
            lambda a, b: a.astype(np.int64) * b,
            [netlist.inputs[:12], netlist.inputs[12:]],
        )
        assert result
        assert result.vectors_checked > 4000

    def test_counterexample_reported(self):
        netlist = wallace_netlist(3)
        netlist.prune()
        result = check_equivalence(
            netlist,
            lambda a, b: a * b + (a == 5) * (b == 5),  # wrong at (5, 5)
            [netlist.inputs[:3], netlist.inputs[3:]],
        )
        assert not result
        assert result.counterexample == (5, 5)
        assert result.got == 25
        assert result.expected == 26

    def test_netlist_vs_netlist(self):
        first = wallace_netlist(6)
        first.prune()
        from repro.circuits.booth import booth_netlist

        second = booth_netlist(6)
        result = check_equivalence(
            first, second, [first.inputs[:6], first.inputs[6:]]
        )
        assert result

    def test_netlist_reference_width_mismatch(self):
        first = wallace_netlist(4)
        first.prune()
        second = wallace_netlist(6)
        with pytest.raises(ValueError):
            check_equivalence(
                first, second, [first.inputs[:4], first.inputs[4:]]
            )
