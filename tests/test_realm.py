"""Tests for the REALM functional model against the paper's Table I."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper
from repro.analysis.exhaustive import exhaustive_metrics
from repro.analysis.metrics import compute_metrics
from repro.core.config import RealmConfig
from repro.core.realm import RealmMultiplier


def _metrics(multiplier, a, b):
    return compute_metrics(multiplier.multiply(a, b), a * b)


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(2020)
    n = 1 << 21
    return rng.integers(0, 1 << 16, n), rng.integers(0, 1 << 16, n)


class TestTableOneRows:
    """The headline reproduction: REALM's error columns, all M, t=0 and t=9."""

    @pytest.mark.parametrize(
        "name,m,t",
        [
            ("realm16-t0", 16, 0),
            ("realm16-t9", 16, 9),
            ("realm8-t0", 8, 0),
            ("realm8-t9", 8, 9),
            ("realm4-t0", 4, 0),
            ("realm4-t9", 4, 9),
        ],
    )
    def test_error_columns(self, samples, name, m, t):
        a, b = samples
        metrics = _metrics(RealmMultiplier(m=m, t=t), a, b)
        row = paper.TABLE1[name]
        assert metrics.bias == pytest.approx(row.bias, abs=0.03)
        assert metrics.mean_error == pytest.approx(row.mean_error, abs=0.03)
        assert metrics.variance == pytest.approx(row.variance, abs=0.05)
        # peaks are extreme statistics: looser MC tolerance
        assert metrics.peak_min == pytest.approx(row.peak_min, abs=0.25)
        assert metrics.peak_max == pytest.approx(row.peak_max, abs=0.25)

    def test_bias_stays_low_until_t8(self, samples):
        # paper: bias <= 0.05% for t <= 8, then jumps at t=9
        a, b = samples
        for t in (0, 4, 8):
            assert abs(_metrics(RealmMultiplier(m=8, t=t), a, b).bias) <= 0.06
        assert abs(_metrics(RealmMultiplier(m=8, t=9), a, b).bias) > 0.1

    def test_error_improves_with_m(self, samples):
        a, b = samples
        means = [
            _metrics(RealmMultiplier(m=m, t=0), a, b).mean_error
            for m in (4, 8, 16)
        ]
        assert means[2] < means[1] < means[0]

    def test_error_degrades_with_t(self, samples):
        a, b = samples
        means = [
            _metrics(RealmMultiplier(m=16, t=t), a, b).mean_error
            for t in (0, 7, 9)
        ]
        assert means[0] <= means[1] <= means[2]


class TestBehaviour:
    def test_zero_operands(self):
        realm = RealmMultiplier()
        assert realm.multiply(0, 12345) == 0
        assert realm.multiply(54321, 0) == 0
        assert realm.multiply(0, 0) == 0

    def test_scalar_and_array_agree(self):
        realm = RealmMultiplier(m=8, t=3)
        scalar = int(realm.multiply(40000, 50000))
        array = realm.multiply(np.array([40000]), np.array([50000]))
        assert scalar == int(array[0])

    def test_relative_error_bounded(self, samples):
        # REALM4 t=9 is the worst configuration: paper peak 7.35%
        a, b = samples
        realm = RealmMultiplier(m=4, t=9)
        products = realm.multiply(a, b)
        exact = a * b
        nonzero = exact > 0
        errors = (products[nonzero] - exact[nonzero]) / exact[nonzero]
        assert np.abs(errors).max() < 0.080

    def test_overflow_modes(self):
        extend = RealmMultiplier(m=16, t=0, overflow="extend")
        saturate = RealmMultiplier(m=16, t=0, overflow="saturate")
        a = np.array([65535]); b = np.array([65535])
        wide = int(extend.multiply(a, b)[0])
        clamped = int(saturate.multiply(a, b)[0])
        assert wide < (1 << 33)
        assert clamped <= (1 << 32) - 1
        assert clamped == min(wide, (1 << 32) - 1)

    def test_invalid_overflow_mode(self):
        with pytest.raises(ValueError):
            RealmMultiplier(overflow="wrap")

    def test_rejects_out_of_range_operands(self):
        realm = RealmMultiplier()
        with pytest.raises(ValueError):
            realm.multiply(1 << 16, 5)
        with pytest.raises(ValueError):
            realm.multiply(-1, 5)

    def test_name(self):
        assert RealmMultiplier(m=8, t=3).name == "REALM8 (t=3)"

    @given(
        st.integers(min_value=256, max_value=(1 << 16) - 1),
        st.integers(min_value=256, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_error_envelope_property(self, a, b):
        # with ka + kb >= 16 the final scaling never floors correction
        # bits away (the paper's special case 2 needs tiny products, e.g.
        # 3*3 -> -11%), so every REALM16-t0 product stays within the
        # segment-error envelope [-2.2%, +2.0%]
        realm = RealmMultiplier(m=16, t=0)
        product = int(realm.multiply(a, b))
        error = (product - a * b) / (a * b)
        assert -0.022 <= error <= 0.020

    @given(
        st.integers(min_value=1, max_value=255),
        st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=200, deadline=None)
    def test_small_products_still_bounded_by_mitchell(self, a, b):
        # in the special-case-2 regime the error can reach Mitchell's
        # -1/9 (correction floored away) but never beyond it by more than
        # the one-integer floor
        realm = RealmMultiplier(m=16, t=0)
        product = int(realm.multiply(a, b))
        assert product >= a * b * (1.0 - 1.0 / 9.0) - 1
        assert product <= a * b * 1.0225 + 1


class TestSmallBitwidths:
    def test_8bit_exhaustive_bias_near_zero(self):
        # operands >= 16 keep at least 4 true fraction bits; below that the
        # paper's special case 2 dominates (correction bits floored away on
        # tiny products, e.g. 3*3 -> 8), which uniform Monte-Carlo never
        # samples at 16 bits
        # the forced rounding LSB carries weight 2**-7 at this width, so a
        # ~+0.5% bias floor is inherent at 8 bits (it is 2**-15 at the
        # paper's 16 bits, i.e. invisible)
        realm = RealmMultiplier(bitwidth=8, m=4, t=0)
        metrics = exhaustive_metrics(realm, lo=16)
        assert abs(metrics.bias) < 1.0
        assert metrics.mean_error < 2.2

    def test_tiny_product_special_case_documented(self):
        # the paper's special case 2: small products lose correction bits
        # to the final floor; 3*3 is the canonical instance
        realm = RealmMultiplier(bitwidth=8, m=4, t=0)
        assert int(realm.multiply(3, 3)) == 8

    def test_8bit_beats_calm(self):
        from repro.multipliers.mitchell import MitchellMultiplier

        realm = exhaustive_metrics(RealmMultiplier(bitwidth=8, m=8, t=0))
        calm = exhaustive_metrics(MitchellMultiplier(bitwidth=8))
        assert realm.mean_error < calm.mean_error / 2

    def test_mse_objective_improves_rms(self):
        mean_obj = exhaustive_metrics(
            RealmMultiplier(bitwidth=10, m=8, t=0, objective="mean"), lo=1
        )
        mse_obj = exhaustive_metrics(
            RealmMultiplier(bitwidth=10, m=8, t=0, objective="mse"), lo=1
        )
        assert mse_obj.rms <= mean_obj.rms + 0.01


class TestConfigValidation:
    def test_rejects_non_power_of_two_m(self):
        with pytest.raises(ValueError):
            RealmConfig(m=6)

    def test_rejects_m_wider_than_fraction(self):
        with pytest.raises(ValueError):
            RealmConfig(bitwidth=4, m=16)

    def test_rejects_t_eating_segment_bits(self):
        # t=12 leaves a 3-bit fraction, too narrow for M=16's 4 select bits
        with pytest.raises(ValueError):
            RealmConfig(bitwidth=16, m=16, t=12)

    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            RealmConfig(objective="l1")

    def test_fraction_width(self):
        assert RealmConfig(bitwidth=16, t=3).fraction_width == 12

    def test_lut_codes_fit_hardware_width(self):
        for m in (4, 8, 16):
            realm = RealmMultiplier(m=m)
            assert realm.lut_codes.shape == (m, m)
            assert realm.lut_codes.max() < (1 << 4)  # q-2 bits
