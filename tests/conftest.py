"""Shared fixtures for the test suite.

The suite leans on three levels of rigor:

* exhaustive checks at small bitwidths (every operand pair);
* seeded random vectors at the paper's 16-bit width, always including the
  corner cases (0, 1, powers of two, all-ones) that trip log datapaths;
* hypothesis property tests on the core data structures.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0x5EA1)


@pytest.fixture(scope="session")
def operands16(rng) -> tuple[np.ndarray, np.ndarray]:
    """Random 16-bit operand pairs with the troublesome corners prepended."""
    corners = np.array(
        [0, 1, 2, 3, 255, 256, 257, 32767, 32768, 32769, 65534, 65535],
        dtype=np.int64,
    )
    a = np.concatenate([corners, np.repeat(corners, len(corners))])
    b = np.concatenate([corners, np.tile(corners, len(corners))])
    ra = rng.integers(0, 1 << 16, 4000)
    rb = rng.integers(0, 1 << 16, 4000)
    return np.concatenate([a, ra]), np.concatenate([b, rb])


@pytest.fixture(scope="session")
def exhaustive8() -> tuple[np.ndarray, np.ndarray]:
    """Every 8-bit operand pair."""
    values = np.arange(256, dtype=np.int64)
    a, b = np.meshgrid(values, values, indexing="ij")
    return a.ravel(), b.ravel()
