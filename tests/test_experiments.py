"""Integration tests for the experiment drivers behind every table/figure."""

from __future__ import annotations

import numpy as np
import pytest

from repro import experiments, paper

QUICK = 1 << 18


class TestTable1Drivers:
    def test_error_rows_track_paper(self):
        rows = experiments.table1_errors(samples=QUICK, ids=("calm", "drum-k8"))
        by_name = {r["name"]: r for r in rows}
        assert by_name["calm"]["mean_error"] == pytest.approx(3.85, abs=0.05)
        assert by_name["drum-k8"]["bias"] == pytest.approx(0.01, abs=0.05)
        assert by_name["calm"]["paper"] is paper.TABLE1["calm"]

    def test_synthesis_rows(self):
        rows = experiments.table1_synthesis(ids=("calm", "realm4-t0"))
        by_name = {r["name"]: r for r in rows}
        assert by_name["calm"]["area_reduction"] > 40
        assert by_name["realm4-t0"]["gate_count"] > 300

    def test_table1_text_renders(self):
        text = experiments.table1_text(samples=QUICK, ids=("calm",))
        assert "cALM" in text
        assert "areaR%" in text


class TestFigureDrivers:
    def test_fig1_panels(self):
        profiles = experiments.fig1_profiles(designs=("calm", "realm16-t0"))
        assert profiles["calm"].mean_error > 5 * profiles["realm16-t0"].mean_error

    def test_fig2_reduction_story(self):
        data = experiments.fig2_segments(m=4)
        calm = np.abs(data["calm_segment_means"]).max()
        realm = np.abs(data["realm_segment_means"]).max()
        assert realm < calm / 5
        assert data["lut_codes"].shape == (4, 4)

    def test_fig3_inventory(self):
        info = experiments.fig3_hardware(m=8, t=2)
        assert info["lut_entries"] == 64
        assert info["output_bits"] == 33
        assert info["cells"]["MUX2"] > 50  # shifters + LUT

    def test_fig4_paper_source(self):
        data = experiments.fig4_designspace(source="paper", samples=QUICK)
        assert len(data["plotted"]) < len(data["points"])
        for front in data["fronts"].values():
            assert front

    def test_fig5_ordering(self):
        histograms = experiments.fig5_histograms(
            samples=QUICK, configs=((16, 0), (4, 0))
        )
        assert histograms[0].spread() < histograms[1].spread()


class TestTable2Driver:
    def test_psnr_gaps_match_paper_story(self):
        rows = experiments.table2_jpeg()
        for row in rows:
            accurate = row["accurate"]
            assert abs(row["realm16-t8"] - accurate) < 0.8
            assert accurate - row["calm"] > 2.0
            assert accurate - row["alm-soa-m11"] > 2.0
            # bits-per-pixel sanity: actual compression
            assert 0.1 < row["accurate_bpp"] < 3.0

    def test_table2_text(self):
        text = experiments.table2_text()
        assert "cameraman" in text and "lena" in text and "livingroom" in text


class TestFormatTable:
    def test_alignment(self):
        text = experiments.format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1
