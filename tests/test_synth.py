"""Tests for the calibrated synthesis cost model (Table I's design columns).

Absolute calibration is pinned to the paper's accurate-multiplier
reference; the orderings the paper's conclusions rest on must emerge from
the structural models (see DESIGN.md for the documented absolute
compression of the log-family reductions).
"""

from __future__ import annotations

import pytest

from repro import paper
from repro.circuits.catalog import netlist_for
from repro.synth.cost import reductions, synthesize, synthesize_design


class TestCalibration:
    def test_accurate_matches_paper_reference(self):
        result = synthesize_design("accurate")
        assert result.area_um2 == pytest.approx(paper.ACCURATE_AREA_UM2, rel=1e-9)
        assert result.power_uw == pytest.approx(paper.ACCURATE_POWER_UW, rel=1e-9)

    def test_reductions_zero_for_reference(self):
        area, power = reductions("accurate")
        assert area == pytest.approx(0.0)
        assert power == pytest.approx(0.0)

    def test_synthesize_design_cached(self):
        assert synthesize_design("calm") is synthesize_design("calm")

    def test_synthesize_matches_design_path(self):
        direct = synthesize(netlist_for("calm"))
        cached = synthesize_design("calm")
        assert direct.area_um2 == pytest.approx(cached.area_um2)
        assert direct.power_uw == pytest.approx(cached.power_uw)


class TestRealmKnobOrderings:
    def test_truncation_monotonically_shrinks_area(self):
        # paper Section III-C: t reduces shifter/adder widths
        areas = [synthesize_design(f"realm8-t{t}").area_um2 for t in range(10)]
        assert all(a >= b for a, b in zip(areas, areas[1:]))

    def test_more_segments_cost_more(self):
        # paper: higher M -> larger LUT mux -> more area
        assert (
            synthesize_design("realm16-t0").area_um2
            > synthesize_design("realm8-t0").area_um2
            > synthesize_design("realm4-t0").area_um2
        )

    def test_every_approximate_design_beats_accurate_in_power(self):
        for name in ("realm16-t0", "realm4-t9", "calm", "drum-k8", "ssm-m8"):
            _, power = reductions(name)
            assert power > 0

    def test_realm_overhead_over_calm_is_small(self):
        # the hardwired LUT's claim: REALM4 costs at most ~15% more than
        # bare cALM despite the correction machinery
        realm = synthesize_design("realm4-t0")
        calm = synthesize_design("calm")
        assert realm.area_um2 < calm.area_um2 * 1.25


class TestCrossFamilyOrderings:
    def test_alm_cheaper_than_calm(self):
        # approximate log adders only remove logic
        assert (
            synthesize_design("alm-soa-m12").area_um2
            < synthesize_design("alm-maa-m12").area_um2 * 1.05
        )
        assert (
            synthesize_design("alm-soa-m12").area_um2
            < synthesize_design("calm").area_um2
        )

    def test_soa_monotone_in_m(self):
        areas = [
            synthesize_design(f"alm-soa-m{m}").area_um2 for m in (3, 6, 9, 11, 12)
        ]
        assert all(a >= b for a, b in zip(areas, areas[1:]))

    def test_drum_monotone_in_k(self):
        areas = [synthesize_design(f"drum-k{k}").area_um2 for k in (8, 7, 6, 5, 4)]
        assert all(a >= b for a, b in zip(areas, areas[1:]))

    def test_am2_recovery_is_expensive(self):
        # Table I: AM2's exact error accumulation nearly cancels the
        # savings; AM1's OR recovery is much cheaper
        assert (
            synthesize_design("am2-nb13").area_um2
            > synthesize_design("am1-nb13").area_um2 * 1.5
        )

    def test_intalp_l2_most_expensive_log_design(self):
        # Table I: IntALP-L2 posts the worst area reduction of the
        # fraction-domain designs (17.8%)
        l2 = synthesize_design("intalp-l2").area_um2
        assert l2 > synthesize_design("intalp-l1").area_um2
        assert l2 > synthesize_design("calm").area_um2
        assert l2 > synthesize_design("mbm-t0").area_um2

    def test_implm_costs_more_than_calm(self):
        # nearest-one detection + signed fractions cost real hardware
        assert (
            synthesize_design("implm-ea").area_um2
            > synthesize_design("calm").area_um2
        )

    def test_depth_reported(self):
        result = synthesize_design("accurate")
        assert result.depth > 10
        assert result.gate_count > 500


class TestReductionRanges:
    def test_realm_reduction_band(self):
        # the paper's headline band is 50-76% area / 66-86% power; our
        # cost model compresses absolute numbers (documented) but the
        # REALM family must still span a wide band in the same order
        low_area, low_power = reductions("realm16-t0")
        high_area, high_power = reductions("realm4-t9")
        assert high_area - low_area > 20
        assert high_power - low_power > 25
        assert low_area > 25 and high_power < 90


class TestEnergyMetrics:
    def test_energy_per_op(self):
        result = synthesize_design("accurate")
        # 821.9 uW at 1 GHz = 0.8219 pJ/op
        assert result.energy_per_op_pj == pytest.approx(0.8219, abs=0.001)

    def test_edp(self):
        from repro.synth.timing import analyze_timing

        result = synthesize_design("calm")
        delay = analyze_timing(netlist_for("calm")).critical_path_ps
        edp = result.energy_delay_product(delay)
        assert edp > 0
        assert edp == pytest.approx(result.energy_per_op_pj * delay / 1000)

    def test_edp_validation(self):
        with pytest.raises(ValueError):
            synthesize_design("calm").energy_delay_product(0)
