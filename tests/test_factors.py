"""Tests for the error-reduction factor mathematics (paper Eq. 8-13)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import integrate

from repro.core.factors import (
    compute_factors,
    compute_factors_mse,
    dequantize_factors,
    mitchell_relative_error,
    quantize_factors,
    segment_denominator,
    segment_index,
    segment_numerator,
)

PRACTICAL_M = (1, 2, 4, 8, 16)


class TestMitchellRelativeError:
    def test_never_positive(self):
        x, y = np.meshgrid(np.linspace(0, 0.999, 101), np.linspace(0, 0.999, 101))
        errors = mitchell_relative_error(x, y)
        assert np.all(errors <= 0)

    def test_worst_case_at_center(self):
        # |error| peaks at x = y = 0.5: 0.25 / 2.25 = 1/9
        assert mitchell_relative_error(0.5, 0.5) == pytest.approx(-1.0 / 9.0)

    def test_zero_on_axes(self):
        assert mitchell_relative_error(0.0, 0.0) == 0.0
        assert mitchell_relative_error(0.7, 0.0) == pytest.approx(0.0)
        assert mitchell_relative_error(0.0, 0.3) == pytest.approx(0.0)

    def test_matches_direct_formula(self):
        x, y = 0.3, 0.4  # x + y < 1
        expected = (1 + x + y) / ((1 + x) * (1 + y)) - 1
        assert mitchell_relative_error(x, y) == pytest.approx(expected)
        x, y = 0.7, 0.8  # x + y >= 1
        expected = 2 * (x + y) / ((1 + x) * (1 + y)) - 1
        assert mitchell_relative_error(x, y) == pytest.approx(expected)

    def test_continuous_across_boundary(self):
        x = np.linspace(0.01, 0.99, 37)
        below = mitchell_relative_error(x, 1.0 - x - 1e-12)
        above = mitchell_relative_error(x, 1.0 - x + 1e-12)
        assert np.allclose(below, above, atol=1e-9)


class TestSegmentIntegrals:
    @pytest.mark.parametrize("m,i,j", [(4, 0, 0), (4, 3, 3), (8, 1, 5), (2, 0, 0)])
    def test_numerator_matches_quadrature(self, m, i, j):
        def integrand(y, x):
            return float(mitchell_relative_error(x, y))

        expected, _ = integrate.dblquad(
            integrand, i / m, (i + 1) / m, j / m, (j + 1) / m, epsabs=1e-12
        )
        assert segment_numerator(m, i, j) == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("m,i,j", [(4, 1, 2), (8, 3, 4), (2, 0, 1), (16, 0, 15)])
    def test_crossing_segments_match_quadrature(self, m, i, j):
        assert i + j == m - 1  # these segments straddle x + y = 1
        def integrand(y, x):
            return float(mitchell_relative_error(x, y))

        expected, _ = integrate.dblquad(
            integrand, i / m, (i + 1) / m, j / m, (j + 1) / m, epsabs=1e-12
        )
        assert segment_numerator(m, i, j) == pytest.approx(expected, abs=1e-7)

    def test_denominator_closed_form(self):
        value = segment_denominator(4, 1, 2)
        expected = math.log((1 + 2 / 4) / (1 + 1 / 4)) * math.log(
            (1 + 3 / 4) / (1 + 2 / 4)
        )
        assert value == pytest.approx(expected)

    def test_whole_square_numerator_is_calm_bias(self):
        # integral of the error over [0,1)^2 is cALM's error bias: -3.85%
        assert segment_numerator(1, 0, 0) == pytest.approx(-0.0385, abs=1e-4)

    def test_invalid_segments_rejected(self):
        with pytest.raises(ValueError):
            segment_numerator(4, 4, 0)
        with pytest.raises(ValueError):
            segment_denominator(4, 0, -1)
        with pytest.raises(ValueError):
            segment_numerator(0, 0, 0)


class TestComputeFactors:
    @pytest.mark.parametrize("m", PRACTICAL_M)
    def test_symmetric(self, m):
        factors = compute_factors(m)
        assert np.allclose(factors, factors.T, atol=1e-12)

    @pytest.mark.parametrize("m", PRACTICAL_M)
    def test_bounds(self, m):
        # paper Section III-C: for practical M, s_ij is positive and < 0.25
        factors = compute_factors(m)
        assert factors.min() > 0.0
        assert factors.max() < 0.25

    def test_shape(self):
        assert compute_factors(8).shape == (8, 8)

    def test_definition(self):
        # s_ij = -numerator / denominator (Eq. 11)
        factors = compute_factors(4)
        expected = -segment_numerator(4, 1, 2) / segment_denominator(4, 1, 2)
        assert factors[1, 2] == pytest.approx(expected)

    def test_peak_on_antidiagonal(self):
        # Mitchell's error is worst near x + y = 1, so the largest factors
        # sit on the anti-diagonal of the table
        factors = compute_factors(8)
        anti = [factors[i, 7 - i] for i in range(8)]
        assert max(anti) == pytest.approx(factors.max())

    def test_m1_matches_calm_bias_ratio(self):
        # single-segment factor = bias / integral of weight = 0.0385/ln(2)^2
        factor = compute_factors(1)[0, 0]
        assert factor == pytest.approx(0.0385 / math.log(2) ** 2, abs=1e-4)

    def test_finer_segmentation_reduces_residual(self):
        # the residual per-segment average error must be ~0 by construction:
        # check via quadrature on one segment for M=4
        m, i, j = 4, 2, 1
        s = compute_factors(m)[i, j]

        def corrected(y, x):
            return float(mitchell_relative_error(x, y)) + s / ((1 + x) * (1 + y))

        residual, _ = integrate.dblquad(
            corrected, i / m, (i + 1) / m, j / m, (j + 1) / m, epsabs=1e-12
        )
        assert residual == pytest.approx(0.0, abs=1e-9)


class TestMseFactors:
    def test_bounds_and_symmetry(self):
        factors = compute_factors_mse(4)
        assert np.allclose(factors, factors.T, atol=1e-9)
        assert factors.min() > 0.0
        assert factors.max() < 0.25

    def test_mse_factors_minimize_weighted_square(self):
        # on each segment, the MSE factor must give a lower integral of
        # (E + s*g)^2 than the mean-zero factor
        m, i, j = 4, 1, 1
        s_mean = compute_factors(m)[i, j]
        s_mse = compute_factors_mse(m)[i, j]

        def square(s):
            def f(y, x):
                g = 1.0 / ((1 + x) * (1 + y))
                return (float(mitchell_relative_error(x, y)) + s * g) ** 2

            value, _ = integrate.dblquad(
                f, i / m, (i + 1) / m, j / m, (j + 1) / m, epsabs=1e-12
            )
            return value

        assert square(s_mse) <= square(s_mean) + 1e-12


class TestQuantization:
    def test_round_to_nearest(self):
        codes = quantize_factors(np.array([[0.0781, 0.0783]]), 6)
        # 0.0781 * 64 = 4.9984 -> 5 ; 0.0783 * 64 = 5.0112 -> 5
        assert codes.tolist() == [[5, 5]]

    def test_paper_configuration_fits_q_minus_2_bits(self):
        for m in (4, 8, 16):
            codes = quantize_factors(compute_factors(m), 6)
            assert codes.max() < (1 << 4)
            assert codes.min() >= 0

    def test_clamps_boundary_code(self):
        codes = quantize_factors(np.array([[0.2499]]), 6)
        assert codes[0, 0] == 15  # would round to 16 without the clamp

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            quantize_factors(np.array([[0.3]]), 6)
        with pytest.raises(ValueError):
            quantize_factors(np.array([[-0.01]]), 6)
        with pytest.raises(ValueError):
            quantize_factors(np.array([[0.1]]), 2)

    def test_dequantize_inverts_grid(self):
        codes = quantize_factors(compute_factors(4), 6)
        values = dequantize_factors(codes, 6)
        assert np.all(np.abs(values - compute_factors(4)) <= 0.5 / 64 + 1e-12)

    @given(st.integers(min_value=4, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_quantization_error_bounded_by_half_lsb(self, q):
        # q >= 4 keeps every M=4 code below the q-2-bit clamp, so plain
        # round-to-nearest semantics (half-LSB bound) apply
        factors = compute_factors(4)
        values = dequantize_factors(quantize_factors(factors, q), q)
        assert np.all(np.abs(values - factors) <= 0.5 / (1 << q) + 1e-12)

    def test_aggressive_quantization_clamps_to_storable_range(self):
        # at q=3 only one stored bit remains: codes must clamp, not overflow
        codes = quantize_factors(compute_factors(4), 3)
        assert codes.max() <= 1


class TestSegmentIndex:
    def test_msb_slicing(self):
        fractions = np.array([0b000_0000, 0b111_1111, 0b100_0000, 0b011_1111])
        assert segment_index(fractions, 7, 4).tolist() == [0, 3, 2, 1]

    def test_m_one_always_zero(self):
        assert segment_index(np.array([5, 99]), 7, 1).tolist() == [0, 0]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            segment_index(np.array([1]), 7, 3)

    def test_rejects_too_narrow_fraction(self):
        with pytest.raises(ValueError):
            segment_index(np.array([1]), 2, 16)

    @given(
        st.integers(min_value=0, max_value=(1 << 15) - 1),
        st.sampled_from([2, 4, 8, 16]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_float_bucketing(self, fraction, m):
        index = int(segment_index(np.array([fraction]), 15, m)[0])
        assert index == int(fraction / (1 << 15) * m)
