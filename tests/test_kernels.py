"""Compiled-kernel equivalence: the fused evaluators of ``repro.kernels``
must be bit-identical to the interpreted paths they replace.

Three fronts: a Hypothesis sweep of every registry family at every
supported width against the interpreted model, the bit-parallel netlist
kernel against the per-gate simulator, and a seeded compiled-layer
conformance slice through the differential oracle.  Plus the cache
contract: one kernel per (fingerprint, version), flushable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.catalog import netlist_for
from repro.kernels import (
    KERNEL_VERSION,
    cached_kernel_count,
    clear_kernel_cache,
    compile_kernel,
    compile_netlist,
    kernel_for,
)
from repro.kernels.compiler import _BLOCK
from repro.kernels.netlist import _pack_words, _unpack_words
from repro.logic.sim import evaluate_words
from repro.multipliers.base import compiled_default
from repro.multipliers.registry import build
from tests.strategies import ALL_IDS, bitwidths, design_ids, operands


def build_or_skip(name: str, bitwidth: int):
    """Registry configurations that need more width than ``bitwidth``
    (e.g. a DRUM k exceeding N) raise ValueError; skip those combos."""
    try:
        return build(name, bitwidth)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# model kernels vs interpreted models
# ----------------------------------------------------------------------


class TestModelKernelEquivalence:
    @given(design_ids(), bitwidths, st.data())
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_interpreted(self, name, bitwidth, data):
        model = build_or_skip(name, bitwidth)
        if model is None:
            return
        a = data.draw(operands(bitwidth), label="a")
        b = data.draw(operands(bitwidth), label="b")
        compiled = int(model.multiply(a, b, compiled=True))
        interpreted = int(model.multiply(a, b, compiled=False))
        assert compiled == interpreted

    @pytest.mark.parametrize("bitwidth", [4, 8, 16])
    @pytest.mark.parametrize("name", ALL_IDS)
    def test_batch_bit_identity(self, name, bitwidth):
        model = build_or_skip(name, bitwidth)
        if model is None:
            pytest.skip(f"{name} unbuildable at N={bitwidth}")
        rng = np.random.default_rng(hash((name, bitwidth)) % (1 << 32))
        a = rng.integers(0, 1 << bitwidth, 4096).astype(np.int64)
        b = rng.integers(0, 1 << bitwidth, 4096).astype(np.int64)
        # force the corners every datapath special-cases
        top = (1 << bitwidth) - 1
        a[:4] = [0, 0, 1, top]
        b[:4] = [0, top, 1, top]
        kernel = kernel_for(model)
        assert np.array_equal(kernel(a, b), model._multiply(a, b))

    @pytest.mark.parametrize("bitwidth", [4, 8, 16])
    @pytest.mark.parametrize(
        "name",
        ["scaletrim-t3-c2", "scaletrim-t4-c0", "scaletrim-t4-c2",
         "scaletrim-t6-c3", "dnnco-l4", "dnnco-l6", "dnnco-l8"],
    )
    def test_new_family_specializers_are_tables(self, name, bitwidth):
        # the scaleTRIM/DNNCO specializers must actually engage (kind
        # "table", bounded precomputed bytes), not fall through to the
        # generic full-table/interpreted ladder
        model = build_or_skip(name, bitwidth)
        if model is None:
            pytest.skip(f"{name} unbuildable at N={bitwidth}")
        kernel = kernel_for(model)
        assert kernel.kind == "table"
        assert 0 < kernel.table_bytes <= 2 << 20

    def test_dnnco_wide_window_falls_back_interpreted(self):
        # beyond l = 8 the 4**l deficit table would blow the budget; the
        # specializer hands the model back to the interpreted path and
        # stays bit-identical
        from repro.multipliers.dnnco import DnnCoMultiplier

        model = DnnCoMultiplier(16, l=10)
        kernel = compile_kernel(model)
        assert kernel.kind == "interpreted"
        rng = np.random.default_rng(4)
        a = rng.integers(0, 1 << 16, 4096).astype(np.int64)
        b = rng.integers(0, 1 << 16, 4096).astype(np.int64)
        assert np.array_equal(kernel(a, b), model._multiply(a, b))

    def test_blocked_evaluation_matches_single_sweep(self):
        # batches beyond the cache-blocking threshold split internally;
        # the seams must be invisible
        model = build("realm16-t3", 16)
        kernel = kernel_for(model)
        rng = np.random.default_rng(5)
        size = 3 * _BLOCK + 17
        a = rng.integers(0, 1 << 16, size).astype(np.int64)
        b = rng.integers(0, 1 << 16, size).astype(np.int64)
        assert np.array_equal(kernel(a, b), model._multiply(a, b))

    def test_scalar_multiply_compiled(self):
        model = build("realm16-t3", 16)
        assert int(model.multiply(777, 888, compiled=True)) == int(
            model.multiply(777, 888, compiled=False)
        )

    def test_broadcast_multiply_compiled(self):
        model = build("mbm-t4", 16)
        b = np.array([1, 2, 3, 40000])
        assert np.array_equal(
            model.multiply(12345, b, compiled=True),
            model.multiply(12345, b, compiled=False),
        )

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED", raising=False)
        assert compiled_default() is False
        monkeypatch.setenv("REPRO_COMPILED", "1")
        assert compiled_default() is True
        model = build("calm", 8)
        a = np.arange(256, dtype=np.int64)
        assert np.array_equal(
            model.multiply(a, a[::-1]),  # compiled via the env default
            model.multiply(a, a[::-1], compiled=False),
        )


# ----------------------------------------------------------------------
# netlist kernels vs the per-gate simulator
# ----------------------------------------------------------------------


NETLIST_CASES = [
    ("accurate", 8),
    ("realm8-t2", 8),
    ("realm16-t3", 16),
    ("mbm-t4", 8),
    ("calm", 8),
    ("drum-k4", 8),
    ("ssm-m8", 16),
]


class TestNetlistKernel:
    @pytest.mark.parametrize("name,bitwidth", NETLIST_CASES)
    def test_matches_interpreted_simulator(self, name, bitwidth):
        netlist = netlist_for(name, bitwidth)
        kernel = compile_netlist(netlist)
        rng = np.random.default_rng(hash((name, bitwidth)) % (1 << 32))
        a = rng.integers(0, 1 << bitwidth, 500).astype(np.int64)
        b = rng.integers(0, 1 << bitwidth, 500).astype(np.int64)
        a[:2] = [0, (1 << bitwidth) - 1]
        b[:2] = [0, (1 << bitwidth) - 1]
        buses = [netlist.inputs[:bitwidth], netlist.inputs[bitwidth:]]
        assert np.array_equal(
            kernel.evaluate_words(buses, [a, b]),
            evaluate_words(netlist, buses, [a, b]),
        )

    @pytest.mark.parametrize("count", [1, 63, 64, 65, 200])
    def test_lane_boundaries(self, count):
        # batch sizes straddling the 64-vector word boundary
        netlist = netlist_for("realm8-t2", 8)
        kernel = compile_netlist(netlist)
        rng = np.random.default_rng(count)
        a = rng.integers(0, 256, count).astype(np.int64)
        b = rng.integers(0, 256, count).astype(np.int64)
        buses = [netlist.inputs[:8], netlist.inputs[8:]]
        assert np.array_equal(
            kernel.evaluate_words(buses, [a, b]),
            evaluate_words(netlist, buses, [a, b]),
        )

    def test_missing_stimulus_raises(self):
        netlist = netlist_for("accurate", 4)
        kernel = compile_netlist(netlist)
        with pytest.raises(ValueError, match="stimulus missing"):
            kernel.evaluate_words([netlist.inputs[:4]], [np.array([1])])

    def test_value_validation_matches_simulator(self):
        netlist = netlist_for("accurate", 4)
        kernel = compile_netlist(netlist)
        buses = [netlist.inputs[:4], netlist.inputs[4:]]
        with pytest.raises(ValueError, match="outside"):
            kernel.evaluate_words(buses, [np.array([16]), np.array([1])])
        with pytest.raises(ValueError, match="outside"):
            kernel.evaluate_words(buses, [np.array([1]), np.array([-1])])

    def test_length_mismatch_raises(self):
        netlist = netlist_for("accurate", 4)
        kernel = compile_netlist(netlist)
        buses = [netlist.inputs[:4], netlist.inputs[4:]]
        with pytest.raises(ValueError, match="disagree on length"):
            kernel.evaluate_words(buses, [np.array([1, 2]), np.array([3])])

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 20) - 1),
            min_size=1,
            max_size=130,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_roundtrip(self, values):
        array = np.asarray(values, dtype=np.int64)
        assert np.array_equal(
            _unpack_words(_pack_words(array, 20), array.size), array
        )


# ----------------------------------------------------------------------
# compile cache
# ----------------------------------------------------------------------


class TestKernelCache:
    def test_equal_fingerprints_share_one_kernel(self):
        clear_kernel_cache()
        first = kernel_for(build("realm16-t3", 16))
        second = kernel_for(build("realm16-t3", 16))
        assert first is second
        assert cached_kernel_count() == 1

    def test_distinct_configurations_get_distinct_kernels(self):
        clear_kernel_cache()
        kernel_for(build("realm16-t3", 16))
        kernel_for(build("realm16-t3", 8))
        kernel_for(build("realm16-t0", 16))
        assert cached_kernel_count() == 3

    def test_clear(self):
        kernel_for(build("calm", 8))
        assert cached_kernel_count() > 0
        clear_kernel_cache()
        assert cached_kernel_count() == 0

    def test_version_stamped(self):
        kernel = compile_kernel(build("realm16-t3", 16))
        assert kernel.version == KERNEL_VERSION
        assert kernel.kind == "table"
        assert kernel.table_bytes > 0

    def test_fallback_kinds(self):
        # IntALP has no per-operand decomposition: full table while the
        # operand space is small, interpreted wrap beyond
        assert compile_kernel(build("intalp-l2", 8)).kind == "full-table"
        assert compile_kernel(build("intalp-l2", 16)).kind == "interpreted"
        assert compile_kernel(build("accurate", 16)).kind == "direct"


# ----------------------------------------------------------------------
# conformance: the kernel layer through the differential oracle
# ----------------------------------------------------------------------


class TestCompiledConformanceSlice:
    @pytest.mark.parametrize(
        "design", ["realm16-t3", "mbm-t4", "calm", "drum-k6", "intalp-l2"]
    )
    def test_seeded_fuzz_slice_is_clean(self, design):
        from repro.conformance import fuzz

        result = fuzz(
            design,
            budget=2048,
            seed=2026,
            layers=("model", "kernel", "exact"),
        )
        assert result.ok, f"kernel layer diverged for {design}"
        assert "kernel" in result.layers

    def test_rtl_layer_runs_compiled(self):
        from repro.conformance.oracles import DifferentialOracle

        oracle = DifferentialOracle("realm8-t2", bitwidth=8)
        assert oracle._rtl_kernel is not None
        records, total = oracle.evaluate(
            np.arange(256, dtype=np.int64),
            np.arange(255, -1, -1, dtype=np.int64),
        )
        assert total == 0, records

    def test_rtl_layer_interpreted_escape(self):
        from repro.conformance.oracles import DifferentialOracle

        oracle = DifferentialOracle("realm8-t2", bitwidth=8, compiled_rtl=False)
        assert oracle._rtl_kernel is None
        _, total = oracle.evaluate(np.array([3, 200]), np.array([7, 9]))
        assert total == 0
