"""Tests for the resilient execution layer (``repro.analysis.runtime``).

The invariant under test everywhere: a run that completes — retried,
rebuilt, degraded or resumed — produces an accumulator bit-identical to
an undisturbed serial run, and a run that cannot complete raises a
:class:`BatchFailure` naming the exact blocks.  Failure injection here is
done with plain in-test task wrappers; the cross-process chaos harness
has its own suite in ``test_chaos.py``.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.analysis.metrics import Accumulator
from repro.analysis.parallel import BLOCK, block_plan, group_blocks, uniform_task
from repro.analysis.runtime import (
    BatchFailure,
    Checkpoint,
    CorruptResultError,
    ResiliencePolicy,
    SharedPool,
    monotonic_progress,
    run_plan,
    validate_batch,
)
from repro.multipliers.mitchell import MitchellMultiplier

#: three blocks — two full, one short tail — one block per batch
SAMPLES = 2 * BLOCK + 1234
CHUNK = BLOCK
SEED = 11

#: a policy that never actually sleeps (tests stay fast and deterministic)
FAST = dict(sleep=lambda s: None, jitter=lambda low, high: low)


def clean_run(multiplier, samples=SAMPLES, seed=SEED) -> Accumulator:
    """The undisturbed serial reference every recovery path must match."""
    return run_plan(uniform_task, (multiplier, seed), block_plan(samples), CHUNK)


class FlakyTask:
    """``uniform_task`` that fails its target batch a set number of times."""

    def __init__(self, fails=0, block=0, make_error=None):
        self.fails = fails
        self.block = block
        self.make_error = make_error or (lambda: RuntimeError("transient fault"))
        self.calls: list[int] = []

    def __call__(self, multiplier, seed, blocks):
        self.calls.append(blocks[0][0])
        if blocks[0][0] == self.block and self.fails > 0:
            self.fails -= 1
            raise self.make_error()
        return uniform_task(multiplier, seed, blocks)


class TestResiliencePolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(batch_timeout=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(batch_timeout=-1.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_pool_rebuilds=-1)

    def test_next_delay_decorrelated_jitter(self):
        # jitter pinned to the upper bound: delay_n = min(cap, 3*delay_{n-1})
        policy = ResiliencePolicy(
            backoff_base=0.05, backoff_cap=2.0, jitter=lambda low, high: high
        )
        delays = []
        previous = policy.backoff_base
        for _ in range(5):
            previous = policy.next_delay(previous)
            delays.append(previous)
        assert delays == pytest.approx([0.15, 0.45, 1.35, 2.0, 2.0])

    def test_next_delay_lower_bound_is_base(self):
        policy = ResiliencePolicy(
            backoff_base=0.05, backoff_cap=2.0, jitter=lambda low, high: low
        )
        assert policy.next_delay(1.0) == pytest.approx(0.05)

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = ResiliencePolicy(sleep=slept.append)
        policy.pause(0.25)
        policy.pause(0.0)  # zero never sleeps
        assert slept == [0.25]


class TestValidateBatch:
    BLOCKS = [(0, 10), (1, 5)]

    @staticmethod
    def _acc(count):
        acc = Accumulator()
        acc.count = count
        acc.all_count = count
        return acc

    def test_accepts_matching_accumulators(self):
        validate_batch(self.BLOCKS, [self._acc(10), self._acc(5)])

    def test_rejects_non_list(self):
        with pytest.raises(CorruptResultError, match="list of accumulators"):
            validate_batch(self.BLOCKS, None)

    def test_rejects_truncated_result(self):
        with pytest.raises(CorruptResultError, match="2 block"):
            validate_batch(self.BLOCKS, [self._acc(10)])

    def test_rejects_wrong_element_type(self):
        with pytest.raises(CorruptResultError, match="expected an Accumulator"):
            validate_batch(self.BLOCKS, [self._acc(10), {"count": 5}])

    def test_rejects_wrong_sample_count(self):
        with pytest.raises(CorruptResultError, match="block 1"):
            validate_batch(self.BLOCKS, [self._acc(10), self._acc(6)])

    def test_rejects_inconsistent_nonzero_count(self):
        bad = self._acc(10)
        bad.count = 11  # more nonzero samples than samples
        with pytest.raises(CorruptResultError, match="block 0"):
            validate_batch(self.BLOCKS, [bad, self._acc(5)])


class TestBatchFailure:
    def test_names_the_blocks_and_cause(self):
        error = BatchFailure(
            "REALM16 (t=0)", [(3, BLOCK), (4, 100)], attempts=3, cause="boom"
        )
        assert error.label == "REALM16 (t=0)"
        assert error.blocks == [(3, BLOCK), (4, 100)]
        assert error.attempts == 3
        message = str(error)
        assert "blocks[3..4]" in message
        assert f"{BLOCK + 100} samples" in message
        assert "'REALM16 (t=0)'" in message
        assert "3 attempt(s)" in message
        assert "boom" in message


class TestCheckpoint:
    PAYLOAD = {"kind": "test", "seed": SEED, "samples": SAMPLES}

    def _checkpoint(self, tmp_path, **kwargs):
        return Checkpoint(tmp_path, "deadbeef", dict(self.PAYLOAD), **kwargs)

    def test_round_trip_bit_exact(self, tmp_path):
        blocks = uniform_task(MitchellMultiplier(), SEED, [(0, BLOCK), (1, 77)])
        state = {0: blocks[0], 1: blocks[1], 2: Accumulator()}
        ckpt = self._checkpoint(tmp_path)
        ckpt.save(state)
        loaded = ckpt.load()
        # dataclass equality is field-by-field float equality — bit-exact
        # round trip through JSON, including the empty block's infinities
        assert loaded == state
        assert loaded[2].peak_min == math.inf
        assert loaded[2].peak_max == -math.inf

    def test_missing_file_loads_empty(self, tmp_path):
        assert self._checkpoint(tmp_path).load() == {}

    def test_corrupt_file_loads_empty(self, tmp_path):
        ckpt = self._checkpoint(tmp_path)
        ckpt.save({0: Accumulator()})
        ckpt.path.write_text("{not json")
        assert ckpt.load() == {}

    def test_payload_mismatch_loads_empty(self, tmp_path):
        ckpt = self._checkpoint(tmp_path)
        ckpt.save({0: Accumulator()})
        other = Checkpoint(tmp_path, "deadbeef", {**self.PAYLOAD, "seed": 12})
        assert other.load() == {}

    def test_version_mismatch_loads_empty(self, tmp_path, monkeypatch):
        ckpt = self._checkpoint(tmp_path)
        ckpt.save({0: Accumulator()})
        monkeypatch.setattr("repro.analysis.runtime.CHECKPOINT_VERSION", 2)
        assert ckpt.load() == {}

    def test_discard_is_idempotent(self, tmp_path):
        ckpt = self._checkpoint(tmp_path)
        ckpt.save({0: Accumulator()})
        assert ckpt.path.exists()
        ckpt.discard()
        ckpt.discard()
        assert not ckpt.path.exists()


class TestRunPlanSerial:
    def test_matches_plain_serial_run(self):
        calm = MitchellMultiplier()
        resilient = run_plan(
            uniform_task,
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            policy=ResiliencePolicy(**FAST),
        )
        assert resilient == clean_run(calm)

    def test_retry_then_success_is_bit_identical(self):
        calm = MitchellMultiplier()
        flaky = FlakyTask(fails=2, block=1)
        slept = []
        events = []
        policy = ResiliencePolicy(
            max_retries=2, sleep=slept.append, jitter=lambda low, high: high
        )
        result = run_plan(
            flaky,
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            policy=policy,
            on_event=events.append,
        )
        assert result == clean_run(calm)
        assert flaky.calls == [0, 1, 1, 1, 2]
        retries = [e for e in events if e["event"] == "retry"]
        assert [e["attempt"] for e in retries] == [1, 2]
        assert all("transient fault" in e["cause"] for e in retries)
        # one decorrelated-jitter pause per retry, growing 3x up to the cap
        assert slept == pytest.approx([0.15, 0.45])

    def test_retry_exhaustion_raises_batch_failure(self):
        flaky = FlakyTask(fails=99, block=1)
        with pytest.raises(BatchFailure) as excinfo:
            run_plan(
                flaky,
                (MitchellMultiplier(), SEED),
                block_plan(SAMPLES),
                CHUNK,
                policy=ResiliencePolicy(max_retries=1, **FAST),
            )
        failure = excinfo.value
        assert failure.blocks == [(1, BLOCK)]
        assert failure.attempts == 2  # initial try + one retry
        assert "blocks[1..1]" in str(failure)

    def test_corrupt_result_is_retried_not_merged(self):
        calm = MitchellMultiplier()

        class CorruptOnce:
            def __init__(self):
                self.armed = True

            def __call__(self, multiplier, seed, blocks):
                out = uniform_task(multiplier, seed, blocks)
                if self.armed and blocks[0][0] == 0:
                    self.armed = False
                    out[0].all_count += 1  # lies about its sample coverage
                return out

        events = []
        result = run_plan(
            CorruptOnce(),
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            policy=ResiliencePolicy(max_retries=2, **FAST),
            on_event=events.append,
        )
        assert result == clean_run(calm)
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 1
        assert "block 0" in retries[0]["cause"]

    def test_checkpoint_saved_on_failure_and_resumed(self, tmp_path):
        calm = MitchellMultiplier()
        payload = {"kind": "test-resume", "seed": SEED, "samples": SAMPLES}
        ckpt = Checkpoint(tmp_path, "abc123", payload)
        bomb = FlakyTask(fails=99, block=2)
        with pytest.raises(BatchFailure):
            run_plan(
                bomb,
                (calm, SEED),
                block_plan(SAMPLES),
                CHUNK,
                policy=ResiliencePolicy(max_retries=0, **FAST),
                checkpoint=ckpt,
            )
        assert ckpt.path.exists()  # blocks 0 and 1 persisted

        counting = FlakyTask()
        events = []
        resumed = run_plan(
            counting,
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            checkpoint=Checkpoint(tmp_path, "abc123", dict(payload)),
            resume=True,
            on_event=events.append,
        )
        # only the interrupted block was recomputed, result is bit-identical
        assert counting.calls == [2]
        assert resumed == clean_run(calm)
        assert events[0]["event"] == "resume"
        assert events[0]["blocks_done"] == 2
        assert not ckpt.path.exists()  # discarded after a clean finish

    def test_resume_ignores_checkpoint_for_other_plan(self, tmp_path):
        calm = MitchellMultiplier()
        payload = {"kind": "test-stale", "samples": SAMPLES}
        stale = Checkpoint(tmp_path, "key", payload)
        # a checkpointed block whose sample count disagrees with the plan
        wrong = Accumulator()
        wrong.count = wrong.all_count = 17
        stale.save({0: wrong})
        counting = FlakyTask()
        result = run_plan(
            counting,
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            checkpoint=Checkpoint(tmp_path, "key", dict(payload)),
            resume=True,
        )
        assert counting.calls == [0, 1, 2]  # nothing was trusted
        assert result == clean_run(calm)

    def test_checkpoint_discarded_on_clean_success(self, tmp_path):
        calm = MitchellMultiplier()
        ckpt = Checkpoint(tmp_path, "clean", {"kind": "t"})
        run_plan(
            uniform_task, (calm, SEED), block_plan(SAMPLES), CHUNK, checkpoint=ckpt
        )
        assert not ckpt.path.exists()
        assert not list((tmp_path / "checkpoints").glob("*.tmp*"))

    def test_progress_reports_cumulative_samples(self):
        seen = []
        run_plan(
            uniform_task,
            (MitchellMultiplier(), SEED),
            block_plan(SAMPLES),
            CHUNK,
            on_progress=seen.append,
        )
        assert seen == [BLOCK, 2 * BLOCK, SAMPLES]


class FailOnceAcrossProcesses:
    """A task that fails its target block exactly once, pool-safe.

    Pool submissions pickle the task, so in-object counters reset per
    worker; an ``O_EXCL`` marker file makes "already fired" visible to
    every process exactly once.
    """

    def __init__(self, block, marker):
        self.block = block
        self.marker = str(marker)

    def __call__(self, multiplier, seed, blocks):
        if blocks[0][0] == self.block:
            try:
                os.close(os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                pass
            else:
                raise RuntimeError("transient fault")
        return uniform_task(multiplier, seed, blocks)


class TestMonotonicProgress:
    """Regression suite for the ``on_progress`` monotonicity contract:
    retried/duplicated batch deliveries must never surface as a
    ``samples_done`` value that repeats or moves backwards."""

    def test_wrapper_suppresses_regressions_and_duplicates(self):
        seen = []
        report = monotonic_progress(seen.append)
        # a retried early block completing after later blocks would,
        # unclamped, replay lower totals into the callback stream
        for value in [BLOCK, 2 * BLOCK, BLOCK, 2 * BLOCK, 3 * BLOCK]:
            report(value)
        assert seen == [BLOCK, 2 * BLOCK, 3 * BLOCK]

    def test_wrapper_passes_none_through(self):
        assert monotonic_progress(None) is None

    def test_serial_retry_stream_is_strictly_increasing(self):
        calm = MitchellMultiplier()
        flaky = FlakyTask(fails=2, block=0)
        seen = []
        result = run_plan(
            flaky,
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            policy=ResiliencePolicy(max_retries=2, **FAST),
            on_progress=seen.append,
        )
        assert result == clean_run(calm)
        assert seen == sorted(set(seen))  # strictly increasing
        assert seen[-1] == SAMPLES

    def test_pooled_retry_after_later_block_stays_monotonic(self, tmp_path):
        """The ISSUE scenario: with workers, a failed early batch is
        retried and completes *after* later batches have reported — the
        callback stream must still be strictly increasing and end at the
        full sample count."""
        calm = MitchellMultiplier()
        # block 0 fails on its first execution (the marker file carries
        # the "already fired" state across worker processes, since each
        # pool submission pickles its own copy of the task); blocks 1
        # and 2 complete and report before its retry lands
        flaky = FailOnceAcrossProcesses(block=0, marker=tmp_path / "fired")
        seen = []
        result = run_plan(
            flaky,
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            workers=2,
            policy=ResiliencePolicy(max_retries=2, **FAST),
            on_progress=seen.append,
        )
        assert result == clean_run(calm)
        assert len(seen) == 3
        assert seen == sorted(set(seen))
        assert seen[-1] == SAMPLES

    def test_resume_then_progress_stays_monotonic(self, tmp_path):
        calm = MitchellMultiplier()
        payload = {"kind": "test-monotonic", "seed": SEED, "samples": SAMPLES}
        bomb = FlakyTask(fails=99, block=2)
        with pytest.raises(BatchFailure):
            run_plan(
                bomb,
                (calm, SEED),
                block_plan(SAMPLES),
                CHUNK,
                policy=ResiliencePolicy(max_retries=0, **FAST),
                checkpoint=Checkpoint(tmp_path, "mono", dict(payload)),
            )
        seen = []
        resumed = run_plan(
            FlakyTask(),
            (calm, SEED),
            block_plan(SAMPLES),
            CHUNK,
            checkpoint=Checkpoint(tmp_path, "mono", dict(payload)),
            resume=True,
            on_progress=seen.append,
        )
        assert resumed == clean_run(calm)
        # the resume report (2 blocks done) then the final total
        assert seen == [2 * BLOCK, SAMPLES]


class TestGroupBlocks:
    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk must be >= 1"):
            group_blocks([(0, BLOCK)], 0)

    def test_partitions_in_order(self):
        plan = block_plan(3 * BLOCK + 5)
        groups = group_blocks(plan, 2 * BLOCK)
        assert [len(g) for g in groups] == [2, 2]
        assert [g[0][0] for g in groups] == [0, 2]


class AlwaysFailBlock:
    """Pool-safe task that fails its target block on every execution."""

    def __init__(self, block):
        self.block = block

    def __call__(self, multiplier, seed, blocks):
        if blocks[0][0] == self.block:
            raise RuntimeError("permanent fault")
        return uniform_task(multiplier, seed, blocks)


class TestSharedPool:
    """The serve layer's reusable executor (see DESIGN.md §10)."""

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SharedPool(0)

    def test_acquire_is_lazy_and_sticky(self):
        with SharedPool(2) as pool:
            assert not pool.live
            first = pool.acquire()
            assert pool.live
            assert pool.acquire() is first
            assert pool.rebuilds == 0
        assert not pool.live

    def test_invalidate_forces_fresh_executor(self):
        with SharedPool(2) as pool:
            first = pool.acquire()
            pool.invalidate()
            assert pool.rebuilds == 1
            assert not pool.live
            assert pool.acquire() is not first

    def test_run_plan_reuses_executor_across_campaigns(self):
        calm = MitchellMultiplier()
        with SharedPool(2) as pool:
            one = run_plan(
                uniform_task, (calm, SEED), block_plan(SAMPLES), CHUNK,
                policy=ResiliencePolicy(**FAST), pool=pool,
            )
            # the clean exit left the executor alive ...
            assert pool.live
            executor = pool.acquire()
            two = run_plan(
                uniform_task, (calm, SEED), block_plan(SAMPLES), CHUNK,
                policy=ResiliencePolicy(**FAST), pool=pool,
            )
            # ... and the second campaign borrowed the very same one
            assert pool.acquire() is executor
            assert pool.rebuilds == 0
        reference = clean_run(calm)
        assert one == reference
        assert two == reference

    def test_failed_campaign_invalidates_shared_pool(self):
        calm = MitchellMultiplier()
        with SharedPool(2) as pool:
            with pytest.raises(BatchFailure):
                run_plan(
                    AlwaysFailBlock(1), (calm, SEED),
                    block_plan(SAMPLES), CHUNK,
                    policy=ResiliencePolicy(max_retries=0, **FAST),
                    pool=pool,
                )
            # the compromised executor was discarded, never reused
            assert pool.rebuilds >= 1
            assert not pool.live
            # and the pool recovers: the next campaign gets a fresh one
            clean = run_plan(
                uniform_task, (calm, SEED), block_plan(SAMPLES), CHUNK,
                policy=ResiliencePolicy(**FAST), pool=pool,
            )
        assert clean == clean_run(calm)

    def test_run_blocked_forwards_pool(self):
        from repro.analysis.parallel import run_blocked

        calm = MitchellMultiplier()
        with SharedPool(2) as pool:
            acc = run_blocked(
                uniform_task, (calm, SEED), SAMPLES, CHUNK, pool=pool
            )
            assert pool.live
        assert acc == clean_run(calm)
