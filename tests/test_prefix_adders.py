"""Tests for the parallel-prefix and carry-select adders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.prefix_adders import (
    ADDER_STYLES,
    brent_kung_adder,
    carry_select_adder,
    kogge_stone_adder,
    sklansky_adder,
)
from repro.logic.netlist import CONST0, CONST1, Netlist
from repro.logic.sim import bus_to_int, int_to_bus, simulate
from repro.synth.timing import analyze_timing

PREFIX_BUILDERS = {
    "sklansky": sklansky_adder,
    "kogge-stone": kogge_stone_adder,
    "brent-kung": brent_kung_adder,
    "carry-select": carry_select_adder,
}


def _build(builder, width, carry_in_net=None):
    nl = Netlist("adder")
    a = nl.input_bus("a", width)
    b = nl.input_bus("b", width)
    cin = carry_in_net if carry_in_net is not None else CONST0
    total, carry = builder(nl, a, b, cin)
    nl.set_outputs(total + [carry])
    return nl, a, b


def _run(nl, a_bus, b_bus, av, bv):
    stimulus = {}
    for bus, values in ((a_bus, av), (b_bus, bv)):
        bits = int_to_bus(np.asarray(values), len(bus))
        for position, net in enumerate(bus):
            stimulus[net] = bits[:, position]
    waves = simulate(nl, stimulus)
    from repro.logic.netlist import CONST0 as C0, CONST1 as C1

    columns = []
    for net in nl.outputs:
        if net == C0:
            columns.append(np.zeros(len(av), dtype=bool))
        elif net == C1:
            columns.append(np.ones(len(av), dtype=bool))
        else:
            columns.append(waves[net])
    return bus_to_int(np.stack(columns, axis=1))


class TestCorrectness:
    @pytest.mark.parametrize("style", sorted(PREFIX_BUILDERS))
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_exhaustive_small_widths(self, style, width):
        builder = PREFIX_BUILDERS[style]
        nl, a_bus, b_bus = _build(builder, width)
        values = np.arange(1 << width)
        av, bv = np.meshgrid(values, values, indexing="ij")
        got = _run(nl, a_bus, b_bus, av.ravel(), bv.ravel())
        assert np.array_equal(got, av.ravel() + bv.ravel())

    @pytest.mark.parametrize("style", sorted(PREFIX_BUILDERS))
    def test_carry_in(self, style):
        builder = PREFIX_BUILDERS[style]
        nl, a_bus, b_bus = _build(builder, 6, carry_in_net=CONST1)
        values = np.arange(64)
        av, bv = np.meshgrid(values, values, indexing="ij")
        got = _run(nl, a_bus, b_bus, av.ravel(), bv.ravel())
        assert np.array_equal(got, av.ravel() + bv.ravel() + 1)

    @pytest.mark.parametrize("style", sorted(PREFIX_BUILDERS))
    def test_random_24bit(self, style):
        builder = PREFIX_BUILDERS[style]
        nl, a_bus, b_bus = _build(builder, 24)
        rng = np.random.default_rng(41)
        av = rng.integers(0, 1 << 24, 500)
        bv = rng.integers(0, 1 << 24, 500)
        got = _run(nl, a_bus, b_bus, av, bv)
        assert np.array_equal(got, av + bv)

    def test_mixed_widths(self):
        nl = Netlist("adder")
        a = nl.input_bus("a", 8)
        b = nl.input_bus("b", 3)
        total, carry = sklansky_adder(nl, a, b)
        nl.set_outputs(total + [carry])
        got = _run(nl, a, b, np.array([255]), np.array([7]))
        assert int(got[0]) == 262

    def test_carry_select_block_validation(self):
        nl = Netlist("adder")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        with pytest.raises(ValueError):
            carry_select_adder(nl, a, b, block=0)


class TestStructure:
    """The classical trade-offs must emerge from the generated netlists."""

    @staticmethod
    def _metrics(builder, width=32):
        nl, _, _ = _build(builder, width)
        nl.prune()
        timing = analyze_timing(nl)
        return nl.gate_count, timing.critical_path_ps

    def test_prefix_beats_ripple_in_depth(self):
        from repro.circuits.adders import ripple_adder

        _, ripple_delay = self._metrics(ripple_adder)
        for builder in (sklansky_adder, kogge_stone_adder, brent_kung_adder):
            _, prefix_delay = self._metrics(builder)
            assert prefix_delay < ripple_delay / 2

    def test_ripple_smallest(self):
        from repro.circuits.adders import ripple_adder

        ripple_gates, _ = self._metrics(ripple_adder)
        for builder in (sklansky_adder, kogge_stone_adder, brent_kung_adder):
            gates, _ = self._metrics(builder)
            assert gates > ripple_gates

    def test_kogge_stone_biggest_prefix(self):
        ks_gates, _ = self._metrics(kogge_stone_adder)
        bk_gates, _ = self._metrics(brent_kung_adder)
        sk_gates, _ = self._metrics(sklansky_adder)
        assert ks_gates > sk_gates >= bk_gates

    def test_brent_kung_deeper_than_sklansky(self):
        _, bk_delay = self._metrics(brent_kung_adder)
        _, sk_delay = self._metrics(sklansky_adder)
        assert bk_delay >= sk_delay

    def test_styles_registry_complete(self):
        assert set(ADDER_STYLES) == {
            "ripple", "sklansky", "kogge-stone", "brent-kung", "carry-select"
        }
        assert all(fn is not None for fn in ADDER_STYLES.values())
