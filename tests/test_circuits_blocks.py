"""Tests for the structural building blocks: adders, LOD, shifters, muxes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    equal_const,
    incrementer,
    loa_adder,
    maa_adder,
    ripple_adder,
    ripple_subtractor,
    soa_adder,
)
from repro.circuits.lod import leading_one, nearest_one, or_tree
from repro.circuits.mux import constant_lut, mux_tree
from repro.circuits.shifter import (
    barrel_left,
    barrel_right,
    normalize_fraction,
    scaling_shifter,
)
from repro.circuits.wallace import wallace_netlist
from repro.logic.netlist import Netlist
from repro.logic.sim import bus_to_int, int_to_bus, simulate


def run(nl, buses, values, outputs):
    """Drive integer values onto buses and read `outputs` back as ints."""
    stimulus = {}
    shape = np.asarray(values[0]).shape
    for bus, vals in zip(buses, values):
        bits = int_to_bus(np.asarray(vals), len(bus))
        for position, net in enumerate(bus):
            stimulus[net] = bits[:, position]
    waves = simulate(nl, stimulus)
    from repro.logic.netlist import CONST0, CONST1

    columns = []
    for net in outputs:
        if net == CONST0:
            columns.append(np.zeros(shape, dtype=bool))
        elif net == CONST1:
            columns.append(np.ones(shape, dtype=bool))
        else:
            columns.append(waves[net])
    return bus_to_int(np.stack(columns, axis=1))


class TestRippleAdder:
    def test_exhaustive_4bit(self):
        nl = Netlist("add4")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        total, carry = ripple_adder(nl, a, b)
        nl.set_outputs(total + [carry])
        values = np.arange(16)
        av, bv = np.meshgrid(values, values, indexing="ij")
        got = run(nl, [a, b], [av.ravel(), bv.ravel()], total + [carry])
        assert np.array_equal(got, av.ravel() + bv.ravel())

    def test_mixed_widths_zero_extend(self):
        nl = Netlist("add")
        a = nl.input_bus("a", 6)
        b = nl.input_bus("b", 3)
        total, carry = ripple_adder(nl, a, b)
        got = run(nl, [a, b], [np.array([63]), np.array([7])], total + [carry])
        assert int(got[0]) == 70

    def test_carry_in(self):
        from repro.logic.netlist import CONST1

        nl = Netlist("add")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        total, carry = ripple_adder(nl, a, b, carry_in=CONST1)
        got = run(nl, [a, b], [np.array([7]), np.array([8])], total + [carry])
        assert int(got[0]) == 16


class TestSubtractorComparator:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_difference_and_comparison(self, x, y):
        nl = Netlist("sub")
        a = nl.input_bus("a", 8)
        b = nl.input_bus("b", 8)
        diff, geq = ripple_subtractor(nl, a, b)
        nl.set_outputs(diff + [geq])
        got = run(nl, [a, b], [np.array([x]), np.array([y])], diff)
        comparison = run(nl, [a, b], [np.array([x]), np.array([y])], [geq])
        assert int(got[0]) == (x - y) % 256
        assert bool(comparison[0]) == (x >= y)


class TestIncrementerEqualConst:
    def test_incrementer(self):
        from repro.logic.netlist import CONST1

        nl = Netlist("inc")
        a = nl.input_bus("a", 4)
        out = incrementer(nl, a, CONST1)
        got = run(nl, [a], [np.arange(16)], out)
        assert np.array_equal(got, np.arange(16) + 1)

    def test_equal_const(self):
        nl = Netlist("eq")
        a = nl.input_bus("a", 5)
        hit = equal_const(nl, a, 19)
        got = run(nl, [a], [np.arange(32)], [hit])
        assert np.array_equal(got.astype(bool), np.arange(32) == 19)

    def test_equal_const_range_check(self):
        nl = Netlist("eq")
        a = nl.input_bus("a", 3)
        with pytest.raises(ValueError):
            equal_const(nl, a, 8)


class TestApproximateAdders:
    @pytest.mark.parametrize(
        "builder,model",
        [
            (loa_adder, "LOA"),
            (soa_adder, "SOA"),
            (maa_adder, "MAA"),
        ],
    )
    def test_matches_functional_model(self, builder, model):
        from repro.multipliers.alm import _ADDERS

        nl = Netlist("approx")
        a = nl.input_bus("a", 10)
        b = nl.input_bus("b", 10)
        total, carry = builder(nl, a, b, 4)
        rng = np.random.default_rng(12)
        av = rng.integers(0, 1 << 10, 500)
        bv = rng.integers(0, 1 << 10, 500)
        got = run(nl, [a, b], [av, bv], total + [carry])
        want = _ADDERS[model](av, bv, 4)
        assert np.array_equal(got, want)

    def test_m_range_validated(self):
        nl = Netlist("approx")
        a = nl.input_bus("a", 4)
        b = nl.input_bus("b", 4)
        with pytest.raises(ValueError):
            loa_adder(nl, a, b, 0)
        with pytest.raises(ValueError):
            soa_adder(nl, a, b, 5)


class TestLod:
    def test_exhaustive_8bit(self):
        nl = Netlist("lod")
        a = nl.input_bus("a", 8)
        onehot, k, nonzero = leading_one(nl, a)
        values = np.arange(1, 256)
        got_k = run(nl, [a], [values], k)
        got_onehot = run(nl, [a], [values], onehot)
        got_nz = run(nl, [a], [values], [nonzero])
        expected_k = np.array([v.bit_length() - 1 for v in range(1, 256)])
        assert np.array_equal(got_k, expected_k)
        assert np.array_equal(got_onehot, 1 << expected_k)
        assert np.all(got_nz == 1)

    def test_zero_input(self):
        nl = Netlist("lod")
        a = nl.input_bus("a", 8)
        onehot, k, nonzero = leading_one(nl, a)
        assert int(run(nl, [a], [np.array([0])], [nonzero])[0]) == 0
        assert int(run(nl, [a], [np.array([0])], k)[0]) == 0

    def test_nearest_one(self):
        nl = Netlist("nod")
        a = nl.input_bus("a", 8)
        _, k_near, round_up, _ = nearest_one(nl, a)
        values = np.arange(1, 256)
        got = run(nl, [a], [values], k_near)
        got_up = run(nl, [a], [values], [round_up])
        for v, kn, up in zip(values, got, got_up):
            k = int(v).bit_length() - 1
            expect_up = k > 0 and bool((v >> (k - 1)) & 1)
            assert bool(up) == expect_up
            assert kn == k + (1 if expect_up else 0)

    def test_or_tree_empty(self):
        from repro.logic.netlist import CONST0

        nl = Netlist("ot")
        assert or_tree(nl, []) == CONST0


class TestShifters:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_barrel_left(self, value, amount):
        nl = Netlist("bl")
        data = nl.input_bus("d", 8)
        sel = nl.input_bus("s", 3)
        out = barrel_left(nl, data, sel, 12)
        got = run(nl, [data, sel], [np.array([value]), np.array([amount])], out)
        assert int(got[0]) == (value << amount) & 0xFFF

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_barrel_right(self, value, amount):
        nl = Netlist("br")
        data = nl.input_bus("d", 8)
        sel = nl.input_bus("s", 3)
        out = barrel_right(nl, data, sel)
        got = run(nl, [data, sel], [np.array([value]), np.array([amount])], out)
        assert int(got[0]) == value >> amount

    def test_normalize_fraction(self):
        from repro.core.bitops import floor_log2, log_fraction

        nl = Netlist("norm")
        a = nl.input_bus("a", 16)
        _, k, _ = leading_one(nl, a)
        fraction = normalize_fraction(nl, a, k)
        values = np.array([1, 3, 96, 255, 32768, 65535, 40000])
        got = run(nl, [a], [values], fraction)
        expected = log_fraction(values, floor_log2(values), 16)
        assert np.array_equal(got, expected)

    def test_normalize_non_power_of_two_width(self):
        # widths like 12 use the constant-subtractor shift amount path
        from repro.core.bitops import floor_log2, log_fraction

        nl = Netlist("norm12")
        a = nl.input_bus("a", 12)
        _, k, _ = leading_one(nl, a)
        fraction = normalize_fraction(nl, a, k)
        values = np.array([1, 7, 100, 2048, 4095])
        got = run(nl, [a], [values], fraction)
        expected = log_fraction(values, floor_log2(values), 12)
        assert np.array_equal(got, expected)

    def test_scaling_shifter_floors(self):
        # mantissa 1.75 (fraction width 2), exponent 0 -> floor(1.75) = 1
        nl = Netlist("scale")
        mantissa = nl.input_bus("m", 3)
        exponent = nl.input_bus("e", 3)
        out = scaling_shifter(nl, mantissa, exponent, 2, 8)
        got = run(
            nl, [mantissa, exponent], [np.array([0b111]), np.array([0])], out
        )
        assert int(got[0]) == 1
        got = run(
            nl, [mantissa, exponent], [np.array([0b111]), np.array([4])], out
        )
        assert int(got[0]) == 0b11100  # 1.75 * 16


class TestMuxes:
    def test_mux_tree(self):
        nl = Netlist("mux")
        options = [nl.input_bus(f"o{i}", 4) for i in range(4)]
        sel = nl.input_bus("s", 2)
        out = mux_tree(nl, options, sel)
        values = [np.array([3]), np.array([7]), np.array([11]), np.array([15])]
        for choice in range(4):
            got = run(nl, options + [sel], values + [np.array([choice])], out)
            assert int(got[0]) == int(values[choice][0])

    def test_mux_tree_option_overflow(self):
        nl = Netlist("mux")
        options = [nl.input_bus(f"o{i}", 2) for i in range(3)]
        sel = nl.input_bus("s", 1)
        with pytest.raises(ValueError):
            mux_tree(nl, options, sel)

    def test_constant_lut_exhaustive(self):
        rng = np.random.default_rng(13)
        table = rng.integers(0, 16, 16).tolist()
        nl = Netlist("lut")
        sel = nl.input_bus("s", 4)
        out = constant_lut(nl, table, 4, sel)
        got = run(nl, [sel], [np.arange(16)], out)
        assert got.tolist() == table

    def test_constant_lut_uniform_table_is_free(self):
        nl = Netlist("lut")
        sel = nl.input_bus("s", 3)
        constant_lut(nl, [5] * 8, 4, sel)
        assert nl.gate_count == 0  # folds to pure constants

    def test_constant_lut_range_check(self):
        nl = Netlist("lut")
        sel = nl.input_bus("s", 1)
        with pytest.raises(ValueError):
            constant_lut(nl, [16], 4, sel)


class TestWallace:
    def test_exhaustive_4x4(self):
        nl = wallace_netlist(4)
        values = np.arange(16)
        av, bv = np.meshgrid(values, values, indexing="ij")
        from repro.logic.sim import evaluate_words

        got = evaluate_words(nl, [nl.inputs[:4], nl.inputs[4:]], [av.ravel(), bv.ravel()])
        assert np.array_equal(got, av.ravel() * bv.ravel())

    def test_random_16bit(self, operands16):
        nl = wallace_netlist(16)
        from repro.logic.sim import evaluate_words

        a, b = operands16
        got = evaluate_words(nl, [nl.inputs[:16], nl.inputs[16:]], [a, b])
        assert np.array_equal(got, a * b)

    def test_structure_is_compressor_dominated(self):
        histogram = wallace_netlist(16).cell_histogram()
        assert histogram["XOR3"] == histogram["MAJ3"]  # paired full adders
        assert histogram["AND2"] >= 256  # the partial-product grid


class TestWallaceFinalAdderStyles:
    @pytest.mark.parametrize(
        "style", ["ripple", "sklansky", "kogge-stone", "brent-kung", "carry-select"]
    )
    def test_exact_for_every_final_adder(self, style):
        nl = wallace_netlist(8, final_adder=style)
        nl.prune()
        rng = np.random.default_rng(44)
        a = rng.integers(0, 256, 800)
        b = rng.integers(0, 256, 800)
        from repro.logic.sim import evaluate_words

        got = evaluate_words(nl, [nl.inputs[:8], nl.inputs[8:]], [a, b])
        assert np.array_equal(got, a * b)

    def test_prefix_final_adder_cuts_delay(self):
        from repro.synth.timing import analyze_timing

        ripple = wallace_netlist(16)
        ripple.prune()
        prefix = wallace_netlist(16, final_adder="kogge-stone")
        prefix.prune()
        assert (
            analyze_timing(prefix).critical_path_ps
            < analyze_timing(ripple).critical_path_ps * 0.75
        )
        assert prefix.area() > ripple.area()

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            wallace_netlist(8, final_adder="magic")
