"""Property-based warehouse guarantees (Hypothesis).

Three invariants the warehouse promises, checked over generated data
rather than hand-picked examples:

* a SQLite roundtrip preserves every field exactly — floats keep their
  ``repr`` semantics, certificate rationals keep arbitrary precision;
* the JSON trend export is byte-stable: exporting the same store twice
  yields identical bytes;
* migrating a populated v1 database to v2 loses no rows.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cache import cache_key
from repro.analysis.metrics import ErrorMetrics
from repro.warehouse import (
    Provenance,
    Warehouse,
    build_trends,
    create_schema,
    metrics_fields,
    migrate,
    render_json,
)

PROVENANCE = Provenance(git_rev="0" * 40, engine_version=2, kernel_version=1)

# JSON keeps float repr semantics but NaN breaks equality, so exclude it;
# infinities survive Python's encoder and compare equal, keep them in.
finite_or_inf = st.floats(allow_nan=False)

metrics_strategy = st.builds(
    ErrorMetrics,
    bias=finite_or_inf,
    mean_error=finite_or_inf,
    peak_min=finite_or_inf,
    peak_max=finite_or_inf,
    variance=finite_or_inf,
    rms=finite_or_inf,
    nmed=finite_or_inf,
    samples=st.integers(min_value=0, max_value=1 << 62),
    peak_certified=st.one_of(
        st.none(), st.tuples(finite_or_inf, finite_or_inf)
    ),
)

# exact rationals as stored by formal certificates: arbitrary-precision
# numerator/denominator pairs far beyond float range
bigint = st.integers(min_value=-(1 << 256), max_value=1 << 256)

json_scalar = st.one_of(
    st.none(),
    st.booleans(),
    bigint,
    finite_or_inf,
    st.text(max_size=32),
)

json_value = st.recursive(
    json_scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=16), children, max_size=4),
    ),
    max_leaves=12,
)

run_slack = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@run_slack
@given(metrics=metrics_strategy, seed=st.integers(0, 1 << 31))
def test_metrics_roundtrip_exact(tmp_path, metrics, seed):
    """Every ErrorMetrics field survives storage bit-for-bit."""
    wh = Warehouse(tmp_path / f"roundtrip-{seed}.db")
    payload = {"kind": "uniform", "design": "calm", "seed": seed}
    try:
        wh.record_run(
            "characterize",
            [("calm", payload, metrics_fields(metrics), False)],
            seed=seed,
            provenance=PROVENANCE,
            created=1754600000.0,
        )
        loaded = wh.latest_metrics(cache_key(payload))
    finally:
        wh.close()
    assert loaded == metrics
    assert type(loaded.samples) is int
    if metrics.peak_certified is not None:
        assert loaded.peak_certified == tuple(metrics.peak_certified)


@run_slack
@given(
    numerator=bigint,
    denominator=st.integers(min_value=1, max_value=1 << 256),
    extra=json_value,
)
def test_certificate_rationals_roundtrip_exact(
    tmp_path, numerator, denominator, extra
):
    """Exact-rational certificate tuples keep arbitrary precision."""
    wh = Warehouse(tmp_path / "formal.db")
    payload = {"kind": "formal", "design": "realm-8-m4-q4"}
    data = {"worst": [numerator, denominator], "context": extra}
    try:
        wh.record_run(
            "formal",
            [("realm-8-m4-q4", payload, data, False)],
            provenance=PROVENANCE,
            created=1754600000.0,
        )
        row = wh.latest(cache_key(payload))
    finally:
        wh.close()
    assert row.data["worst"] == [numerator, denominator]
    assert type(row.data["worst"][0]) is int  # never collapsed to float
    assert row.data["context"] == extra


@run_slack
@given(
    runs=st.lists(
        st.tuples(st.sampled_from(["calm", "mbm-t0", "realm4-t0"]), metrics_strategy),
        min_size=1,
        max_size=5,
    )
)
def test_json_export_is_byte_stable(tmp_path, runs):
    """Exporting the same store twice yields identical bytes."""
    wh = Warehouse(tmp_path / "export.db")
    try:
        for index, (design, metrics) in enumerate(runs):
            payload = {"kind": "uniform", "design": design, "seed": index}
            wh.record_run(
                "characterize",
                [(design, payload, metrics_fields(metrics), False)],
                seed=index,
                provenance=PROVENANCE,
                created=1754600000.0 + index,
            )
        first = render_json(build_trends(wh))
        second = render_json(build_trends(wh))
        raw_one = json.dumps(wh.export(), sort_keys=True)
        raw_two = json.dumps(wh.export(), sort_keys=True)
    finally:
        wh.close()
    assert first.encode() == second.encode()
    assert raw_one == raw_two


_LEGACY_DB = iter(range(1 << 30))


@run_slack
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(["calm", "mbm-t0", "realm4-t0", "realm8-t2"]),
            json_value,
        ),
        min_size=1,
        max_size=8,
    )
)
def test_v1_to_v2_migration_loses_no_rows(tmp_path, rows):
    """Upgrading a populated v1 database preserves every row exactly."""
    # tmp_path is shared across examples: a fresh file per example keeps
    # each migration starting from a genuine v1 database
    path = tmp_path / f"legacy-{next(_LEGACY_DB)}.db"
    connection = sqlite3.connect(path)
    try:
        create_schema(connection, version=1)
        for index, (design, data) in enumerate(rows):
            payload = {"design": design, "n": index}
            cursor = connection.execute(
                "INSERT INTO runs (kind, created, wall_seconds, git_rev,"
                " engine_version, kernel_version, seed, samples)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                ("characterize", 1754600000.0 + index, None,
                 PROVENANCE.git_rev, 2, 1, index, None),
            )
            connection.execute(
                "INSERT INTO results (run_id, design, fingerprint, payload,"
                " data) VALUES (?, ?, ?, ?, ?)",
                (
                    cursor.lastrowid,
                    design,
                    cache_key(payload),
                    json.dumps(payload, sort_keys=True, separators=(",", ":")),
                    json.dumps(data, sort_keys=True, separators=(",", ":")),
                ),
            )
        connection.commit()
    finally:
        connection.close()

    wh = Warehouse(path)
    try:
        assert wh.schema_version == 2
        recorded_runs = wh.runs()
        recorded_results = wh.results()
    finally:
        wh.close()
    assert len(recorded_runs) == len(rows)
    assert len(recorded_results) == len(rows)
    for (design, data), result in zip(rows, recorded_results):
        assert result.design == design
        assert result.data == data
        assert result.reused is False  # backfilled default
    for run in recorded_runs:
        assert run.counters == {}  # backfilled default


@run_slack
@given(version=st.integers(min_value=-5, max_value=50))
def test_unknown_schema_versions_are_refused(tmp_path, version):
    """create_schema only builds versions this build understands."""
    from repro.warehouse import SCHEMA_VERSION, SchemaError

    connection = sqlite3.connect(":memory:")
    try:
        if 1 <= version <= SCHEMA_VERSION:
            create_schema(connection, version=version)
            # migrate reports the version it found, then upgrades in place
            assert migrate(connection) == version
        else:
            with pytest.raises(SchemaError):
                create_schema(connection, version=version)
    finally:
        connection.close()
