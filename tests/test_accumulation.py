"""Tests for the error-accumulation analysis (design consideration b)."""

from __future__ import annotations

import pytest

from repro.analysis.accumulation import accumulation_profile, predicted_floor
from repro.core.realm import RealmMultiplier
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.mitchell import MitchellMultiplier

LENGTHS = (1, 16, 256)


class TestAccumulationProfile:
    def test_accurate_has_zero_error(self):
        profile = accumulation_profile(AccurateMultiplier(), lengths=LENGTHS, trials=32)
        assert all(p.mean_error == 0.0 and p.spread == 0.0 for p in profile)

    def test_spread_shrinks_with_length(self):
        profile = accumulation_profile(
            RealmMultiplier(m=8), lengths=(1, 64, 1024), trials=128
        )
        spreads = [p.spread for p in profile]
        assert spreads[0] > spreads[1] > spreads[2]
        # roughly 1/sqrt(n): 1 -> 1024 shrinks by ~32x (allow 2x slack)
        assert spreads[0] / spreads[2] > 8

    def test_biased_multiplier_converges_to_floor(self):
        calm = MitchellMultiplier()
        profile = accumulation_profile(calm, lengths=(256, 1024), trials=128)
        floor = predicted_floor(calm, samples=1 << 18)
        for point in profile:
            # floor characterized on full-uniform operands, profile on
            # the >=256 slice: allow a few tenths
            assert point.mean_error == pytest.approx(floor, abs=0.4)

    def test_realm_floor_near_zero(self):
        profile = accumulation_profile(
            RealmMultiplier(m=16), lengths=(1024,), trials=128
        )
        assert abs(profile[0].mean_error) < 0.1

    def test_bias_survives_where_noise_cancels(self):
        # at n=1024 cALM's spread is tiny but its mean error is ~ -3.7%:
        # accumulation kills noise, not bias — the paper's point
        profile = accumulation_profile(
            MitchellMultiplier(), lengths=(1024,), trials=128
        )
        point = profile[0]
        assert abs(point.mean_error) > 20 * point.spread
