"""Tests for the error-metric framework (paper Section IV-B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    compute_metrics,
    merge_metrics,
    relative_errors,
)


class TestRelativeErrors:
    def test_basic(self):
        errors, exact = relative_errors(np.array([110, 90]), np.array([100, 100]))
        assert errors.tolist() == [0.1, -0.1]
        assert exact.tolist() == [100, 100]

    def test_zero_products_excluded(self):
        errors, exact = relative_errors(np.array([0, 50]), np.array([0, 100]))
        assert errors.tolist() == [-0.5]
        assert exact.tolist() == [100]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors(np.zeros(2), np.zeros(3))


class TestComputeMetrics:
    def test_known_values(self):
        approx = np.array([102, 98, 100, 104])
        exact = np.array([100, 100, 100, 100])
        m = compute_metrics(approx, exact)
        assert m.bias == pytest.approx(1.0)
        assert m.mean_error == pytest.approx(2.0)
        assert m.peak_min == pytest.approx(-2.0)
        assert m.peak_max == pytest.approx(4.0)
        # var of [2,-2,0,4]% = mean(sq) - mean^2 = 6 - 1 = 5 (percent^2)
        assert m.variance == pytest.approx(5.0)
        assert m.rms == pytest.approx(np.sqrt(6.0))
        assert m.samples == 4

    def test_nmed_normalization(self):
        m = compute_metrics(
            np.array([90]), np.array([100]), max_product=1000
        )
        assert m.nmed == pytest.approx(1.0)  # 10/1000 in percent

    def test_all_zero_products_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(np.array([0]), np.array([0]))

    def test_row_order(self):
        m = compute_metrics(np.array([101]), np.array([100]))
        assert m.row() == (m.bias, m.mean_error, m.peak_min, m.peak_max, m.variance)

    def test_str_contains_key_stats(self):
        text = str(compute_metrics(np.array([101]), np.array([100])))
        assert "bias" in text and "ME" in text


class TestMergeMetrics:
    def test_equivalent_to_single_batch(self):
        rng = np.random.default_rng(11)
        exact = rng.integers(0, 1 << 20, 10000)
        approx = exact + rng.integers(-50, 50, 10000)
        approx = np.maximum(approx, 0)
        whole = compute_metrics(approx, exact, max_product=1 << 20)
        chunked = merge_metrics(
            ((approx[i : i + 1000], exact[i : i + 1000]) for i in range(0, 10000, 1000)),
            max_product=1 << 20,
        )
        assert chunked.bias == pytest.approx(whole.bias, rel=1e-9)
        assert chunked.mean_error == pytest.approx(whole.mean_error, rel=1e-9)
        assert chunked.variance == pytest.approx(whole.variance, rel=1e-6)
        assert chunked.peak_min == pytest.approx(whole.peak_min)
        assert chunked.peak_max == pytest.approx(whole.peak_max)
        assert chunked.nmed == pytest.approx(whole.nmed, rel=1e-9)
        assert chunked.samples == whole.samples

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            merge_metrics(iter(()), max_product=100)

    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_chunking_invariance(self, chunk_sizes):
        # metrics must not depend on how the stream is chunked
        rng = np.random.default_rng(sum(chunk_sizes))
        total = sum(chunk_sizes)
        exact = rng.integers(1, 1000, total)
        approx = exact + rng.integers(-5, 6, total)
        reference = compute_metrics(approx, exact, max_product=1000)
        chunks = []
        start = 0
        for size in chunk_sizes:
            chunks.append((approx[start : start + size], exact[start : start + size]))
            start += size
        merged = merge_metrics(iter(chunks), max_product=1000)
        assert merged.bias == pytest.approx(reference.bias, rel=1e-9, abs=1e-12)
        assert merged.variance == pytest.approx(reference.variance, rel=1e-6, abs=1e-9)
