"""Tests for the Table I baseline multipliers against published metrics.

Each design's characteristic error signature — sign structure, peak
magnitudes, Table I statistics — is checked with a seeded 2^21-sample
Monte Carlo, matching the paper's methodology (the paper uses 2^24; the
tolerances account for the smaller run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import paper
from repro.analysis.metrics import compute_metrics
from repro.multipliers.alm import AlmLoa, AlmMaa, AlmSoa
from repro.multipliers.am import Am1Multiplier, Am2Multiplier
from repro.multipliers.drum import DrumMultiplier
from repro.multipliers.implm import ImpLmMultiplier
from repro.multipliers.intalp import IntAlpMultiplier, interpolate_xy
from repro.multipliers.mbm import MBM_CORRECTION, MbmMultiplier
from repro.multipliers.ssm import EssmMultiplier, SsmMultiplier


@pytest.fixture(scope="module")
def mc():
    rng = np.random.default_rng(2020)
    n = 1 << 21
    a = rng.integers(0, 1 << 16, n)
    b = rng.integers(0, 1 << 16, n)
    return a, b


def metrics_for(multiplier, mc):
    a, b = mc
    return compute_metrics(multiplier.multiply(a, b), a * b)


# designs whose models reproduce Table I closely (see DESIGN.md for the
# documented AM1 deviation, checked separately below)
CLOSE_MATCHES = [
    (MbmMultiplier(t=0), "mbm-t0"),
    (MbmMultiplier(t=4), "mbm-t4"),
    (MbmMultiplier(t=9), "mbm-t9"),
    (ImpLmMultiplier(), "implm-ea"),
    (AlmMaa(m=3), "alm-maa-m3"),
    (AlmMaa(m=9), "alm-maa-m9"),
    (AlmMaa(m=12), "alm-maa-m12"),
    (AlmSoa(m=3), "alm-soa-m3"),
    (AlmSoa(m=9), "alm-soa-m9"),
    (AlmSoa(m=11), "alm-soa-m11"),
    (AlmSoa(m=12), "alm-soa-m12"),
    (DrumMultiplier(k=8), "drum-k8"),
    (DrumMultiplier(k=6), "drum-k6"),
    (DrumMultiplier(k=4), "drum-k4"),
    (SsmMultiplier(m=10), "ssm-m10"),
    (SsmMultiplier(m=9), "ssm-m9"),
    (SsmMultiplier(m=8), "ssm-m8"),
    (EssmMultiplier(m=8), "essm8"),
    (IntAlpMultiplier(level=1), "intalp-l1"),
    (IntAlpMultiplier(level=2), "intalp-l2"),
    (Am2Multiplier(nb=13), "am2-nb13"),
]


@pytest.mark.parametrize(
    "multiplier,name", CLOSE_MATCHES, ids=[name for _, name in CLOSE_MATCHES]
)
def test_bias_and_mean_error_match_table1(multiplier, name, mc):
    row = paper.TABLE1[name]
    measured = metrics_for(multiplier, mc)
    assert measured.bias == pytest.approx(row.bias, abs=0.05)
    assert measured.mean_error == pytest.approx(row.mean_error, abs=0.05)


@pytest.mark.parametrize(
    "multiplier,name",
    [(m, n) for m, n in CLOSE_MATCHES if not n.startswith(("ssm", "am2", "essm"))],
    ids=[n for _, n in CLOSE_MATCHES if not n.startswith(("ssm", "am2", "essm"))],
)
def test_peaks_match_table1(multiplier, name, mc):
    # peak errors of the segment/AM designs need rarer corner inputs than
    # 2^21 samples reach; the analytically-peaked designs check here
    row = paper.TABLE1[name]
    measured = metrics_for(multiplier, mc)
    assert measured.peak_min == pytest.approx(row.peak_min, abs=0.35)
    assert measured.peak_max == pytest.approx(row.peak_max, abs=0.35)


class TestOneSidedDesigns:
    """SSM, ESSM, AM1, AM2 truncate: they never overestimate."""

    @pytest.mark.parametrize(
        "multiplier",
        [
            SsmMultiplier(m=9),
            EssmMultiplier(m=8),
            Am1Multiplier(nb=13),
            Am2Multiplier(nb=9),
        ],
        ids=["ssm", "essm", "am1", "am2"],
    )
    def test_never_overestimates(self, multiplier, mc):
        a, b = mc
        assert np.all(multiplier.multiply(a, b) <= a * b)


class TestDrum:
    def test_exact_below_fragment_width(self):
        drum = DrumMultiplier(k=6)
        for a in (1, 17, 63):
            for b in (2, 40, 63):
                assert int(drum.multiply(a, b)) == a * b

    def test_forced_lsb_unbiases(self, mc):
        # DRUM's signature: |bias| far below its mean error
        measured = metrics_for(DrumMultiplier(k=6), mc)
        assert abs(measured.bias) < measured.mean_error / 10

    def test_per_operand_error_bound(self, mc):
        a, b = mc
        drum = DrumMultiplier(k=8)
        exact = a * b
        nonzero = exact > 0
        errors = (drum.multiply(a, b)[nonzero] - exact[nonzero]) / exact[nonzero]
        bound = (1 + 2.0**-7) ** 2 - 1  # forced LSB: ±2^-(k-1) per operand
        assert np.abs(errors).max() <= bound + 1e-9

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            DrumMultiplier(k=2)
        with pytest.raises(ValueError):
            DrumMultiplier(k=17)


class TestSsmFamily:
    def test_ssm_exact_for_small_operands(self):
        ssm = SsmMultiplier(m=8)
        assert int(ssm.multiply(255, 255)) == 255 * 255

    def test_ssm_truncates_high_segment(self):
        ssm = SsmMultiplier(m=8)
        # 0x01FF -> high segment 0x01, shift 8 -> 0x0100
        assert int(ssm.multiply(0x01FF, 1)) == 0x0100

    def test_essm_middle_segment_keeps_more(self):
        essm = EssmMultiplier(m=8)
        # 0x0FF3: leading one at bit 11 -> middle segment bits 11..4
        assert int(essm.multiply(0x0FF3, 1)) == 0x0FF0

    def test_essm_beats_ssm(self, mc):
        ssm = metrics_for(SsmMultiplier(m=8), mc)
        essm = metrics_for(EssmMultiplier(m=8), mc)
        assert essm.mean_error < ssm.mean_error

    def test_essm_odd_split_rejected(self):
        with pytest.raises(ValueError):
            EssmMultiplier(bitwidth=16, m=9)


class TestAmFamily:
    def test_am2_recovery_beats_am1(self, mc):
        am1 = metrics_for(Am1Multiplier(nb=13), mc)
        am2 = metrics_for(Am2Multiplier(nb=13), mc)
        assert abs(am2.bias) < abs(am1.bias)

    def test_more_recovery_bits_help(self, mc):
        wide = metrics_for(Am1Multiplier(nb=13), mc)
        narrow = metrics_for(Am1Multiplier(nb=5), mc)
        assert wide.mean_error < narrow.mean_error

    def test_full_recovery_am2_nb32_is_modest(self, mc):
        # even full-width AM2 recovery cannot restore what the OR tree
        # lost recursively, but it must improve on no recovery
        none = metrics_for(Am2Multiplier(nb=0), mc)
        full = metrics_for(Am2Multiplier(nb=32), mc)
        assert full.mean_error < none.mean_error


class TestMbm:
    def test_correction_constant(self):
        assert MBM_CORRECTION == pytest.approx(1.0 / 12.0)
        assert MbmMultiplier(q=6).correction_code == 5  # round(64/12)

    def test_matches_realm_m1_structure(self, mc):
        # MBM is REALM's datapath with a single correction; at q=6 the
        # quantized codes coincide (both 5/64), so the products agree
        from repro.core.realm import RealmMultiplier

        a, b = mc
        mbm = MbmMultiplier(t=0, q=6)
        realm1 = RealmMultiplier(m=1, t=0, q=6)
        assert np.array_equal(mbm.multiply(a, b), realm1.multiply(a, b))


class TestImpLm:
    def test_double_sided(self, mc):
        measured = metrics_for(ImpLmMultiplier(), mc)
        assert measured.peak_min < -10.0
        assert measured.peak_max > 10.0

    def test_exact_at_powers_of_two(self):
        implm = ImpLmMultiplier()
        assert int(implm.multiply(4096, 256)) == 4096 * 256

    def test_only_ea_supported(self):
        with pytest.raises(ValueError):
            ImpLmMultiplier(adder="SOA")


class TestIntAlp:
    def test_level1_is_min(self):
        x = np.array([0.25, 0.75, 0.5])
        y = np.array([0.5, 0.25, 0.5])
        assert np.allclose(interpolate_xy(x, y, 1), np.minimum(x, y))

    def test_level1_always_overestimates(self, mc):
        a, b = mc
        intalp = IntAlpMultiplier(level=1)
        # floor of a >= exact quantity can dip 1 below; allow that slack
        assert np.all(intalp.multiply(a, b) >= a * b - 1)

    def test_deeper_levels_converge(self):
        # corner interpolants improve in steps of two levels: the
        # bisection midpoint of an axis-aligned edge already lies on the
        # parent plane, so the odd split is a no-op for interpolation
        rng = np.random.default_rng(7)
        x = rng.random(2000)
        y = rng.random(2000)
        errors = [
            np.abs(interpolate_xy(x, y, level) - x * y).max()
            for level in (1, 2, 3, 4)
        ]
        assert errors[0] > errors[1] > errors[3]
        assert errors[2] <= errors[1] + 1e-12

    def test_ls_levels_converge_monotonically(self):
        # the least-squares fit re-optimizes every level, so it improves
        # strictly at each step (unlike the interpolant)
        rng = np.random.default_rng(9)
        x = rng.random(5000)
        y = rng.random(5000)
        mses = [
            np.mean((interpolate_xy(x, y, level, "ls") - x * y) ** 2)
            for level in (1, 2, 3, 4)
        ]
        assert mses[0] > mses[1] > mses[2] > mses[3]

    def test_ls_fit_beats_interpolation(self):
        rng = np.random.default_rng(8)
        x = rng.random(5000)
        y = rng.random(5000)
        interp = np.mean((interpolate_xy(x, y, 2, "interp") - x * y) ** 2)
        ls = np.mean((interpolate_xy(x, y, 2, "ls") - x * y) ** 2)
        assert ls < interp

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            IntAlpMultiplier(level=0)
        with pytest.raises(ValueError):
            IntAlpMultiplier(fit="spline")


class TestAlmFamily:
    def test_m_grows_error(self, mc):
        small = metrics_for(AlmSoa(m=3), mc)
        large = metrics_for(AlmSoa(m=12), mc)
        assert large.variance > small.variance

    def test_soa_compensates_bias(self, mc):
        # the set-one low part pushes the log sum up, offsetting
        # Mitchell's negative bias as m grows (Table I: -3.84 -> -1.75)
        maa = metrics_for(AlmMaa(m=12), mc)
        soa = metrics_for(AlmSoa(m=12), mc)
        assert soa.bias > maa.bias

    def test_rejects_bad_adder(self):
        from repro.multipliers.alm import ApproxAdderLogMultiplier

        with pytest.raises(ValueError):
            ApproxAdderLogMultiplier(adder="XOA")
        with pytest.raises(ValueError):
            AlmSoa(m=0)
