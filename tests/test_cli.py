"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestBasicCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "realm16-t0" in out
        assert "drum-k8" in out

    def test_multiply(self, capsys):
        code, out = run_cli(capsys, "multiply", "accurate", "123", "456")
        assert code == 0
        assert str(123 * 456) in out

    def test_multiply_approximate_reports_error(self, capsys):
        code, out = run_cli(capsys, "multiply", "calm", "40000", "50000")
        assert code == 0
        assert "relative error" in out

    def test_factors(self, capsys):
        code, out = run_cli(capsys, "factors", "--m", "4")
        assert code == 0
        assert "s_ij factors for M=4" in out
        assert "quantized LUT codes" in out

    def test_factors_mse(self, capsys):
        code, out = run_cli(capsys, "factors", "--m", "2", "--objective", "mse")
        assert code == 0
        assert "objective=mse" in out

    def test_characterize_quick(self, capsys):
        code, out = run_cli(capsys, "characterize", "drum-k8", "--quick")
        assert code == 0
        assert "DRUM" in out and "paper" in out

    def test_unknown_design_exits_cleanly(self, capsys):
        # a bad design id is a usage error (exit 2 + stderr), not a traceback
        with pytest.raises(SystemExit) as info:
            run_cli(capsys, "characterize", "realm99-t0", "--quick")
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "unknown multiplier 'realm99-t0'" in err
        assert "repro-realm list" in err

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestFigureCommands:
    def test_fig2(self, capsys):
        code, out = run_cli(capsys, "fig2", "--m", "4")
        assert code == 0
        assert "cALM per-segment" in out
        assert "REALM per-segment" in out

    def test_fig3(self, capsys):
        code, out = run_cli(capsys, "fig3", "--m", "4", "--t", "2")
        assert code == 0
        assert "gate_count" in out
        assert "lut_entries" in out

    def test_fig5_quick(self, capsys):
        code, out = run_cli(capsys, "fig5", "--quick")
        assert code == 0
        assert "REALM16 (t=0)" in out
        assert "spread" in out


class TestExtensionCommands:
    def test_theory(self, capsys):
        code, out = run_cli(capsys, "theory")
        assert code == 0
        assert "REALM16" in out and "ME" in out

    def test_report(self, capsys):
        code, out = run_cli(capsys, "report", "calm")
        assert code == 0
        assert "critical path" in out

    def test_verilog_stdout(self, capsys):
        code, out = run_cli(capsys, "verilog", "ssm-m8")
        assert code == 0
        assert "module" in out and "endmodule" in out

    def test_verilog_file(self, capsys, tmp_path):
        target = tmp_path / "design.v"
        code, out = run_cli(capsys, "verilog", "drum-k6", "-o", str(target))
        assert code == 0
        assert target.exists()
        assert "endmodule" in target.read_text()

    def test_fir(self, capsys):
        code, out = run_cli(capsys, "fir", "realm16-t0", "calm")
        assert code == 0
        assert "SNR" in out

    def test_nn(self, capsys):
        code, out = run_cli(capsys, "nn", "accurate", "realm16-t0")
        assert code == 0
        assert "accuracy" in out

    def test_explore(self, capsys):
        code, out = run_cli(
            capsys, "explore", "--max-me", "1.0", "--quick", "--top", "3"
        )
        assert code == 0
        assert "REALM" in out

    def test_explore_infeasible(self, capsys):
        # DNNCO's near-exact windows satisfy ME <= 0.0001 on their own,
        # so pin an area floor no near-exact design can also clear
        code, out = run_cli(
            capsys,
            "explore", "--max-me", "0.0001", "--min-area", "50", "--quick",
        )
        assert code == 1
        assert "no feasible" in out

    def test_table2(self, capsys):
        code, out = run_cli(capsys, "table2")
        assert code == 0
        assert "cameraman" in out and "stand-ins" in out

    def test_divide(self, capsys):
        code, out = run_cli(capsys, "divide", "50000", "37", "--m", "8")
        assert code == 0
        assert "REALM-div8" in out and "relative error" in out

    def test_divide_mitchell(self, capsys):
        code, out = run_cli(capsys, "divide", "1000", "10")
        assert code == 0
        assert "cALM-div16" in out

class TestResilienceFlags:
    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--max-retries", "-1"),
            ("--batch-timeout", "0"),
            ("--batch-timeout", "-2.5"),
            ("--samples", "0"),
            ("--samples", "-4"),
            ("--workers", "0"),
            ("--workers", "-2"),
        ],
    )
    def test_rejects_nonsensical_values(self, capsys, flag, value):
        with pytest.raises(SystemExit):
            main(["characterize", "calm", "--quick", flag, value])
        assert "error" in capsys.readouterr().err

    def test_characterize_accepts_resilience_flags(self, capsys):
        code, out = run_cli(
            capsys, "characterize", "calm", "--quick",
            "--max-retries", "0", "--batch-timeout", "60",
        )
        assert code == 0
        assert "cALM" in out

    def test_resume_implies_checkpoint(self):
        import argparse

        from repro.cli import _engine_options

        args = argparse.Namespace(resume=True)
        options = _engine_options(args)
        assert options["checkpoint"] is True
        assert options["resume"] is True
        assert _engine_options(argparse.Namespace())["checkpoint"] is False

    def test_checkpoint_run_leaves_no_state_behind(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys, "characterize", "drum-k8", "--quick",
            "--cache", str(tmp_path), "--checkpoint",
        )
        assert code == 0
        # the run finished, so its checkpoint was discarded
        assert not list(tmp_path.glob("checkpoints/*.json"))

    def test_progress_reports_injected_retry(self, capsys, tmp_path, monkeypatch):
        from repro.analysis.chaos import CHAOS_ENV, ChaosPlan, FaultSpec

        plan = ChaosPlan(
            (FaultSpec(kind="raise", block=0, times=1),), str(tmp_path)
        )
        monkeypatch.setenv(CHAOS_ENV, plan.to_json())
        code = main(["characterize", "calm", "--quick", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "retrying batch@0" in captured.err
        assert "injected fault" in captured.err

    def test_progress_printer_formats_resilience_events(self, capsys):
        import argparse

        from repro.cli import _progress_printer

        emit = _progress_printer(argparse.Namespace(progress=True))
        emit({"event": "retry", "design": "X", "batch": 3, "attempt": 1,
              "delay": 0.15, "cause": "boom"})
        emit({"event": "pool-rebuild", "design": "X", "rebuilds": 1,
              "cause": "crashed"})
        emit({"event": "degraded", "design": "X", "rebuilds": 3,
              "cause": "crashed"})
        emit({"event": "resume", "design": "X", "blocks_done": 2,
              "samples_done": 131072})
        emit({"event": "design-fallback", "design": "X", "cause": "died"})
        err = capsys.readouterr().err
        assert "retrying batch@3 (attempt 1, backoff 0.15s): boom" in err
        assert "rebuilding worker pool (#1)" in err
        assert "degraded to serial execution after 3 pool rebuilds" in err
        assert "resumed 2 block(s) (131072 samples) from checkpoint" in err
        assert "worker task failed, recomputing serially: died" in err


class TestVerilogExtras:
    def test_verilog_with_testbench(self, capsys, tmp_path):
        target = tmp_path / "dut.v"
        code, out = run_cli(
            capsys, "verilog", "ssm-m8", "--testbench", "--vectors", "4",
            "-o", str(target),
        )
        assert code == 0
        text = target.read_text()
        assert "endmodule" in text
        assert text.count("check(") == 4
        assert "ALL %0d VECTORS PASS" in text


class TestArgumentValidation:
    """Explicit coverage for the CLI's usage-error paths."""

    def test_multiply_unknown_design(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["multiply", "not-a-design", "3", "4"])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "unknown multiplier 'not-a-design'" in err

    def test_multiply_operand_out_of_range(self, capsys):
        code = main(["multiply", "accurate", str(1 << 16), "2"])
        assert code == 2
        assert "outside [0, 2**16)" in capsys.readouterr().err

    def test_multiply_negative_operand(self, capsys):
        code = main(["multiply", "calm", "--", "-5", "2"])
        assert code == 2
        assert "outside" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["characterize", "calm", "--quick", "--cache", "/tmp/x", "--no-cache"],
            ["table1", "--quick", "--cache", "/tmp/x", "--no-cache"],
            ["characterize", "calm", "--quick", "--no-cache", "--resume"],
        ],
    )
    def test_conflicting_cache_knobs(self, capsys, argv):
        with pytest.raises(SystemExit) as info:
            main(argv)
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err or "conflicts" in err

    def test_bare_cache_flag_is_not_a_conflict(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code, out = run_cli(capsys, "characterize", "drum-k8", "--quick",
                            "--cache")
        assert code == 0

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--max-batch", "0"),
            ("--max-queue", "0"),
            ("--max-latency-ms", "-1"),
            ("--characterize-slots", "0"),
            ("--workers", "0"),
        ],
    )
    def test_serve_rejects_nonsensical_policy(self, capsys, flag, value):
        with pytest.raises(SystemExit) as info:
            main(["serve", flag, value])
        assert info.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_client_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["client"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["client", "characterize", "calm", "--samples", "0"],
            ["client", "characterize", "calm", "--seed", "-1"],
            ["client", "--port", "0", "ping"],
            ["client", "--timeout", "0", "ping"],
        ],
    )
    def test_client_rejects_bad_values(self, capsys, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_client_unreachable_server(self, capsys):
        import socket

        # grab a port that nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["client", "--port", str(port), "ping"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err


class TestWarehouseReport:
    """`repro report` with no design renders warehouse trends; with a
    design id it stays the synthesis report it always was."""

    def _populate(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys, "characterize", "calm", "--quick", "--no-cache",
            "--warehouse", str(tmp_path),
        )
        assert code == 0

    def test_trend_text_report(self, capsys, tmp_path):
        self._populate(capsys, tmp_path)
        code, out = run_cli(capsys, "report", "--warehouse", str(tmp_path))
        assert code == 0
        assert "cALM" in out  # the registry display name, not the CLI id
        assert "characterize" in out

    def test_trend_json_is_byte_stable(self, capsys, tmp_path):
        import json

        self._populate(capsys, tmp_path)
        code, first = run_cli(
            capsys, "report", "--json", "--warehouse", str(tmp_path)
        )
        assert code == 0
        _, second = run_cli(
            capsys, "report", "--json", "--warehouse", str(tmp_path)
        )
        assert first == second
        trends = json.loads(first)
        assert "cALM" in trends["designs"]
        assert trends["runs"][0]["kind"] == "characterize"

    def test_kind_filter_and_limit(self, capsys, tmp_path):
        self._populate(capsys, tmp_path)
        code, out = run_cli(
            capsys, "report", "--json", "--kind", "sweep",
            "--limit", "1", "--warehouse", str(tmp_path),
        )
        import json

        assert code == 0
        assert json.loads(out)["runs"] == []

    def test_unusable_warehouse_is_a_clean_failure(self, capsys, tmp_path):
        import sqlite3

        connection = sqlite3.connect(tmp_path / "warehouse.db")
        connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        connection.execute("INSERT INTO meta VALUES ('schema_version', '99')")
        connection.commit()
        connection.close()
        code = main(["report", "--warehouse", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no experiment warehouse available" in captured.err

    def test_warehouse_flags_are_mutually_exclusive(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as info:
            run_cli(
                capsys, "report", "--warehouse", str(tmp_path), "--no-warehouse"
            )
        assert info.value.code == 2

    def test_design_argument_still_means_synthesis_report(self, capsys):
        code, out = run_cli(capsys, "report", "calm")
        assert code == 0
        assert "critical path" in out
