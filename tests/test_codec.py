"""Integration tests for the full JPEG codec (Table II methodology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.realm import RealmMultiplier
from repro.jpeg.codec import compress, decompress, roundtrip_psnr
from repro.jpeg.images import test_image as make_image
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.mitchell import MitchellMultiplier


@pytest.fixture(scope="module")
def cameraman():
    return make_image("cameraman")


class TestRoundtrip:
    def test_accurate_quality50_band(self, cameraman):
        quality_db, compressed = roundtrip_psnr(AccurateMultiplier(), cameraman)
        assert quality_db > 30.0
        assert compressed.bits_per_pixel < 2.5  # real compression happened

    def test_lossless_stage_is_lossless(self, cameraman):
        # decompressing with the same multiplier twice is deterministic
        acc = AccurateMultiplier()
        compressed = compress(acc, cameraman)
        first = decompress(acc, compressed)
        second = decompress(acc, compressed)
        assert np.array_equal(first, second)

    def test_higher_quality_better_psnr(self, cameraman):
        acc = AccurateMultiplier()
        low, _ = roundtrip_psnr(acc, cameraman, quality=20)
        high, _ = roundtrip_psnr(acc, cameraman, quality=90)
        assert high > low

    def test_higher_quality_bigger_stream(self, cameraman):
        acc = AccurateMultiplier()
        _, small = roundtrip_psnr(acc, cameraman, quality=20)
        _, large = roundtrip_psnr(acc, cameraman, quality=90)
        assert large.bits > small.bits


class TestTable2Ordering:
    def test_realm_negligible_drop(self, cameraman):
        # the paper's Table II claim: REALM within ~0.5 dB of accurate
        accurate_db, _ = roundtrip_psnr(AccurateMultiplier(), cameraman)
        realm_db, _ = roundtrip_psnr(RealmMultiplier(m=16, t=8), cameraman)
        assert abs(accurate_db - realm_db) < 0.8

    def test_calm_drops_hard(self, cameraman):
        # and cALM loses many dB
        accurate_db, _ = roundtrip_psnr(AccurateMultiplier(), cameraman)
        calm_db, _ = roundtrip_psnr(MitchellMultiplier(), cameraman)
        assert accurate_db - calm_db > 2.0

    def test_realm_m_ordering(self, cameraman):
        db16, _ = roundtrip_psnr(RealmMultiplier(m=16, t=8), cameraman)
        db4, _ = roundtrip_psnr(RealmMultiplier(m=4, t=8), cameraman)
        assert db16 >= db4 - 0.5  # finer segmentation never much worse


class TestValidation:
    def test_rejects_non_grayscale(self):
        with pytest.raises(ValueError):
            compress(AccurateMultiplier(), np.zeros((8, 8, 3)))

    def test_rejects_non_multiple_of_8(self):
        with pytest.raises(ValueError):
            compress(AccurateMultiplier(), np.zeros((9, 16)))

    def test_metadata(self, cameraman):
        compressed = compress(AccurateMultiplier(), cameraman, quality=50)
        assert compressed.height == compressed.width == 256
        assert compressed.quality == 50
        assert compressed.bits == len(compressed.data) * 8
