"""Tests for the Baugh-Wooley signed multiplier and the testbench export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.baugh_wooley import baugh_wooley_netlist
from repro.circuits.wallace import wallace_netlist
from repro.logic.sim import evaluate_words
from repro.logic.verilog import testbench as make_testbench


def _signed_product(netlist, width, a, b):
    """Drive two's complement operands, interpret the 2N-bit result."""
    mask_in = (1 << width) - 1
    got = evaluate_words(
        netlist,
        [netlist.inputs[:width], netlist.inputs[width:]],
        [a & mask_in, b & mask_in],
    )
    total = 2 * width
    sign_bit = np.int64(1) << (total - 1)
    return (got ^ sign_bit) - sign_bit  # sign-extend the 2N-bit value


class TestBaughWooley:
    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_exhaustive_small(self, width):
        netlist = baugh_wooley_netlist(width)
        low, high = -(1 << (width - 1)), 1 << (width - 1)
        values = np.arange(low, high)
        a, b = np.meshgrid(values, values, indexing="ij")
        got = _signed_product(netlist, width, a.ravel(), b.ravel())
        assert np.array_equal(got, a.ravel() * b.ravel())

    def test_random_16bit(self):
        netlist = baugh_wooley_netlist(16)
        rng = np.random.default_rng(121)
        a = rng.integers(-(1 << 15), 1 << 15, 1500)
        b = rng.integers(-(1 << 15), 1 << 15, 1500)
        a[:4] = [-32768, -32768, 32767, -1]
        b[:4] = [-32768, 32767, 32767, -1]
        got = _signed_product(netlist, 16, a, b)
        assert np.array_equal(got, a * b)

    def test_same_compressor_cost_class_as_wallace(self):
        signed = baugh_wooley_netlist(16)
        unsigned = wallace_netlist(16)
        unsigned.prune()
        # signed support costs only the sign-row tweaks, not a new tree
        assert signed.area() < unsigned.area() * 1.1

    def test_width_validation(self):
        with pytest.raises(ValueError):
            baugh_wooley_netlist(1)


class TestTestbenchExport:
    def test_structure(self):
        netlist = wallace_netlist(4)
        netlist.prune()
        a = np.array([3, 15])
        b = np.array([5, 9])
        want = evaluate_words(netlist, [netlist.inputs[:4], netlist.inputs[4:]], [a, b])
        text = make_testbench(netlist, [netlist.inputs[:4], netlist.inputs[4:]], [a, b], want)
        assert "module wallace4_tb;" in text
        assert text.count("check(") == 2  # one call per vector
        assert "ALL %0d VECTORS PASS" in text
        assert "$finish;" in text

    def test_vector_literals_encode_expected_values(self):
        netlist = wallace_netlist(4)
        netlist.prune()
        a = np.array([3])
        b = np.array([5])
        text = make_testbench(
            netlist, [netlist.inputs[:4], netlist.inputs[4:]], [a, b], np.array([15])
        )
        assert "check(4'h3, 4'h5, 8'hf);" in text

    def test_length_mismatch_rejected(self):
        netlist = wallace_netlist(4)
        netlist.prune()
        with pytest.raises(ValueError):
            make_testbench(
                netlist,
                [netlist.inputs[:4], netlist.inputs[4:]],
                [np.array([1]), np.array([2])],
                np.array([2, 3]),
            )
