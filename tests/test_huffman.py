"""Tests for the baseline JPEG entropy coder (T.81 Annex K tables)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.huffman import (
    BitReader,
    BitWriter,
    decode_blocks,
    encode_blocks,
    _amplitude_bits,
    _category,
    _decode_amplitude,
)


class TestBitIO:
    def test_roundtrip(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b1, 1)
        writer.write(0xAB, 8)
        data = writer.to_bytes()
        reader = BitReader(data)
        assert reader.read(3) == 0b101
        assert reader.read(1) == 1
        assert reader.read(8) == 0xAB

    def test_padding_with_ones(self):
        writer = BitWriter()
        writer.write(0, 1)
        assert writer.to_bytes() == bytes([0b0111_1111])

    def test_zero_length_write(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert len(writer) == 0
        with pytest.raises(ValueError):
            writer.write(1, 0)

    def test_reader_exhaustion(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()


class TestAmplitudeCoding:
    @given(st.integers(min_value=-2047, max_value=2047))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        size = _category(value)
        assert _decode_amplitude(_amplitude_bits(value, size), size) == value

    def test_categories(self):
        assert _category(0) == 0
        assert _category(1) == _category(-1) == 1
        assert _category(255) == 8
        assert _category(-256) == 9


class TestBlockCoding:
    def _roundtrip(self, blocks):
        blocks = np.asarray(blocks, dtype=np.int64)
        data = encode_blocks(blocks)
        return decode_blocks(data, blocks.shape[0])

    def test_all_zero_blocks(self):
        blocks = np.zeros((3, 64))
        assert np.array_equal(self._roundtrip(blocks), blocks)

    def test_dc_difference_chain(self):
        blocks = np.zeros((4, 64))
        blocks[:, 0] = [100, 90, 90, -30]
        assert np.array_equal(self._roundtrip(blocks), blocks)

    def test_long_zero_runs_use_zrl(self):
        blocks = np.zeros((1, 64))
        blocks[0, 0] = 5
        blocks[0, 40] = -3  # 39 leading AC zeros: needs ZRL symbols
        assert np.array_equal(self._roundtrip(blocks), blocks)

    def test_full_block_no_eob(self):
        rng = np.random.default_rng(31)
        blocks = rng.integers(1, 5, (2, 64))  # no zeros at all
        assert np.array_equal(self._roundtrip(blocks), blocks)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode_blocks(np.zeros((2, 63)))

    def test_invalid_bitstream_detected(self):
        with pytest.raises((ValueError, EOFError)):
            decode_blocks(b"\x00\x00", count=4)

    def test_sparse_blocks_compress(self):
        sparse = np.zeros((16, 64), dtype=np.int64)
        sparse[:, 0] = 50
        dense = np.asarray(
            np.random.default_rng(32).integers(-200, 200, (16, 64)), dtype=np.int64
        )
        assert len(encode_blocks(sparse)) < len(encode_blocks(dense)) / 4

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=-1000, max_value=1000),
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, entries):
        block = np.zeros((1, 64), dtype=np.int64)
        for position, value in entries:
            block[0, position] = value
        assert np.array_equal(self._roundtrip(block), block)
