"""Tests for the bit-level helpers behind the functional models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import (
    floor_log2,
    log_fraction,
    mask,
    shift_value,
    truncate_fraction,
)


class TestFloorLog2:
    def test_exhaustive_16bit(self):
        values = np.arange(1, 1 << 16)
        expected = np.array([v.bit_length() - 1 for v in range(1, 1 << 16)])
        assert np.array_equal(floor_log2(values), expected)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            floor_log2(np.array([0]))
        with pytest.raises(ValueError):
            floor_log2(np.array([5, -1]))

    @given(st.integers(min_value=1, max_value=(1 << 52) - 1))
    @settings(max_examples=200, deadline=None)
    def test_matches_bit_length(self, value):
        assert int(floor_log2(np.array([value]))[0]) == value.bit_length() - 1


class TestLogFraction:
    @given(st.integers(min_value=1, max_value=(1 << 16) - 1))
    @settings(max_examples=200, deadline=None)
    def test_reconstruction(self, value):
        # v = 2**k * (1 + X / 2**(N-1)) must hold exactly
        k = int(floor_log2(np.array([value]))[0])
        fraction = int(log_fraction(np.array([value]), np.array([k]), 16)[0])
        assert value * (1 << (15 - k)) == (1 << 15) + fraction
        assert 0 <= fraction < (1 << 15)

    def test_power_of_two_fraction_zero(self):
        values = np.array([1, 2, 4, 1024, 32768])
        k = floor_log2(values)
        assert np.all(log_fraction(values, k, 16) == 0)

    def test_left_alignment(self):
        # 3 = 2^1 * 1.1b -> fraction = 0.5 -> MSB of the 15-bit field
        fraction = int(log_fraction(np.array([3]), np.array([1]), 16)[0])
        assert fraction == 1 << 14


class TestTruncateFraction:
    def test_forces_lsb(self):
        fraction = np.array([0b101010100000000])
        assert int(truncate_fraction(fraction, 0, 15)[0]) & 1 == 1

    def test_drops_t_bits(self):
        fraction = np.array([0b111_1111_1111_1111])
        out = int(truncate_fraction(fraction, 4, 15)[0])
        assert out == 0b111_1111_1111  # 11 bits, LSB already 1

    def test_width_reduction_semantics(self):
        # value interpretation: x' = ((X >> t) | 1) / 2**(w - t)
        fraction = np.array([0b010_0000_0000_0000])
        out = int(truncate_fraction(fraction, 8, 15)[0])
        assert out == (0b010_0000 | 1)

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            truncate_fraction(np.array([0]), 15, 15)
        with pytest.raises(ValueError):
            truncate_fraction(np.array([0]), -1, 15)


class TestShiftValue:
    def test_left(self):
        assert int(shift_value(np.array([5]), np.array([3]))[0]) == 40

    def test_right_floors(self):
        assert int(shift_value(np.array([7]), np.array([-1]))[0]) == 3

    def test_mixed_vector(self):
        out = shift_value(np.array([8, 8, 8]), np.array([-3, 0, 2]))
        assert out.tolist() == [1, 8, 32]

    @given(
        st.integers(min_value=0, max_value=(1 << 30) - 1),
        st.integers(min_value=-20, max_value=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_floor_semantics(self, value, shift):
        out = int(shift_value(np.array([value]), np.array([shift]))[0])
        assert out == (value << shift if shift >= 0 else value >> -shift)


class TestMask:
    def test_values(self):
        assert int(mask(0)) == 0
        assert int(mask(4)) == 0xF
        assert int(mask(16)) == 0xFFFF

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)
