"""Tests for the Booth radix-4 and Dadda accurate multipliers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.booth import booth_netlist, dadda_netlist
from repro.circuits.wallace import wallace_netlist
from repro.logic.sim import evaluate_words
from repro.synth.timing import analyze_timing

MAKERS = {"booth": booth_netlist, "dadda": dadda_netlist}


def _check_exact(netlist, width, a, b):
    got = evaluate_words(
        netlist, [netlist.inputs[:width], netlist.inputs[width:]], [a, b]
    )
    assert np.array_equal(got, np.asarray(a, dtype=np.int64) * b)


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(MAKERS))
    @pytest.mark.parametrize("width", [2, 3, 4, 6])
    def test_exhaustive_small(self, name, width):
        netlist = MAKERS[name](width)
        values = np.arange(1 << width)
        a, b = np.meshgrid(values, values, indexing="ij")
        _check_exact(netlist, width, a.ravel(), b.ravel())

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_random_16bit_with_corners(self, name, operands16):
        a, b = operands16
        _check_exact(MAKERS[name](16), 16, a, b)

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_random_20bit(self, name):
        rng = np.random.default_rng(51)
        a = rng.integers(0, 1 << 20, 400)
        b = rng.integers(0, 1 << 20, 400)
        _check_exact(MAKERS[name](20), 20, a, b)


class TestStructure:
    def test_dadda_smaller_than_wallace(self):
        # Dadda's lazier reduction uses (almost) the same full adders but
        # far fewer half adders, so total area drops
        wallace = wallace_netlist(16)
        wallace.prune()
        dadda = dadda_netlist(16)
        assert dadda.area() < wallace.area()
        # half-adder AND2s: Dadda's grid has 256 AND2 partial products,
        # the rest are half adders — fewer than Wallace's
        assert dadda.cell_histogram()["AND2"] < wallace.cell_histogram()["AND2"]

    def test_booth_halves_compressor_rows(self):
        # 16-bit Booth: 9 recoded rows vs 16 AND rows -> fewer 3:2
        # compressors in the reduction tree (the XOR3/MAJ3 pairs)
        booth = booth_netlist(16)
        wallace = wallace_netlist(16)
        wallace.prune()
        assert booth.cell_histogram()["XOR3"] < wallace.cell_histogram()["XOR3"]

    def test_all_meet_same_function_contract(self):
        # the three accurate cores are interchangeable anchors
        rng = np.random.default_rng(52)
        a = rng.integers(0, 1 << 16, 200)
        b = rng.integers(0, 1 << 16, 200)
        results = []
        for maker in (wallace_netlist, booth_netlist, dadda_netlist):
            nl = maker(16)
            if maker is wallace_netlist:
                nl.prune()
            results.append(
                evaluate_words(nl, [nl.inputs[:16], nl.inputs[16:]], [a, b])
            )
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])

    def test_timing_reported(self):
        report = analyze_timing(dadda_netlist(16))
        assert report.critical_path_ps > 0
        assert report.levels > 5
