"""Deterministic test harness for the batched serving layer.

No timers, no sockets (except the explicit TCP transport tests), no
sleeps: the micro-batcher's latency window is replaced by an injectable
gate that never fires, so the tests control *exactly* which requests
share a fused batch by calling ``flush_pending()`` themselves.  On top
of that harness:

* equivalence under batching — for one design per registry family,
  fused responses are bit-identical to direct ``Multiplier.multiply``
  calls, under randomized seeded arrival schedules;
* backpressure — the bounded queue sheds at exactly ``max_queue``
  operand pairs, with structured ``overloaded`` errors, and a seeded
  client fleet under sustained overload loses nothing silently:
  accepted + shed == sent, and every accepted response carries its own
  request's product (no corruption, no cross-wiring);
* graceful drain — every admitted request resolves, new work is
  refused with ``shutting-down``.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.analysis import telemetry
from repro.analysis.montecarlo import characterize
from repro.multipliers.registry import build, names
from repro.serve import (
    AsyncClient,
    BatchPolicy,
    InProcessClient,
    MicroBatcher,
    ModelCache,
    ServeError,
    Service,
    ShedError,
    TcpServer,
    decode_frame,
    encode_frame,
)

run = asyncio.run


def family_representatives() -> list[str]:
    """One design id per multiplier family (sorted, deterministic)."""
    chosen: dict[str, str] = {}
    for name in names():
        chosen.setdefault(build(name).family, name)
    return sorted(chosen.values())


FAMILIES = family_representatives()


class NeverSleep:
    """The injectable latency gate: parks forever, tests flush manually."""

    def __init__(self):
        self.calls = 0

    async def __call__(self, seconds: float) -> None:
        self.calls += 1
        await asyncio.Event().wait()


def random_pairs(rng, count, lengths=(1, 2, 3, 5, 8, 13)):
    """Seeded request mix: (a, b) operand vectors of varying lengths."""
    out = []
    for _ in range(count):
        n = int(rng.choice(lengths))
        a = rng.integers(0, 1 << 16, size=n)
        b = rng.integers(0, 1 << 16, size=n)
        out.append((a.tolist(), b.tolist()))
    return out


def direct_products(design: str, a, b) -> list[int]:
    """The reference: one unbatched call straight into the model."""
    model = build(design)
    products = model.multiply(
        np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
    )
    return [int(v) for v in np.atleast_1d(products)]


# ----------------------------------------------------------------------
# Micro-batcher: equivalence under batching
# ----------------------------------------------------------------------


class TestBatchingEquivalence:
    @pytest.mark.parametrize("design", FAMILIES)
    def test_fused_batch_matches_direct_calls(self, design):
        """One fused evaluation per family == per-request direct calls."""

        async def scenario():
            batcher = MicroBatcher(sleep=NeverSleep())
            rng = np.random.default_rng([2020, hash(design) & 0xFFFF])
            requests = random_pairs(rng, count=9)
            futures = [batcher.submit(design, a, b) for a, b in requests]
            batcher.flush_pending()
            for (a, b), future in zip(requests, futures):
                got = [int(v) for v in future.result()]
                assert got == direct_products(design, a, b)

        run(scenario())

    def test_equivalence_is_schedule_independent(self):
        """The same requests, arriving in different orders and split
        across different flushes, produce identical per-request results."""

        async def one_schedule(requests, order, flush_points):
            batcher = MicroBatcher(sleep=NeverSleep())
            futures = {}
            for step, index in enumerate(order):
                a, b = requests[index]
                futures[index] = batcher.submit("calm", a, b)
                if step in flush_points:
                    batcher.flush_pending()
            batcher.flush_pending()
            return {
                index: [int(v) for v in future.result()]
                for index, future in futures.items()
            }

        async def scenario():
            rng = np.random.default_rng(7)
            requests = random_pairs(rng, count=12)
            reference = {
                i: direct_products("calm", a, b)
                for i, (a, b) in enumerate(requests)
            }
            for trial in range(4):
                order = rng.permutation(len(requests)).tolist()
                flush_points = set(
                    rng.integers(0, len(requests), size=trial).tolist()
                )
                got = await one_schedule(requests, order, flush_points)
                assert got == reference, f"schedule {trial} diverged"

        run(scenario())

    def test_mixed_designs_in_one_flush(self):
        async def scenario():
            batcher = MicroBatcher(sleep=NeverSleep())
            interleaved = [
                ("calm", [3, 5], [7, 11]),
                ("accurate", [100], [200]),
                ("calm", [40000], [50000]),
                ("drum-k8", [123, 456, 789], [321, 654, 987]),
                ("accurate", [65535], [65535]),
            ]
            futures = [
                batcher.submit(design, a, b) for design, a, b in interleaved
            ]
            with telemetry.recording() as record:
                batcher.flush_pending()
            for (design, a, b), future in zip(interleaved, futures):
                assert [int(v) for v in future.result()] == direct_products(
                    design, a, b
                )
            # one fused evaluation span per distinct model in the batch
            assert record.snapshot.phase("serve.batch").count == 3

        run(scenario())

    def test_max_batch_slices_the_queue(self):
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_batch=4, max_queue=64), sleep=NeverSleep()
            )
            futures = [
                batcher.submit("calm", [i], [i + 1]) for i in range(6)
            ]
            with telemetry.recording() as record:
                batcher.flush_pending()
            # 6 single-pair requests under max_batch=4 -> two evaluations
            assert record.snapshot.phase("serve.batch").count == 2
            for i, future in enumerate(futures):
                assert [int(v) for v in future.result()] == direct_products(
                    "calm", [i], [i + 1]
                )

        run(scenario())

    def test_oversized_single_request_is_taken_whole(self):
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_batch=2, max_queue=64), sleep=NeverSleep()
            )
            a = list(range(1, 8))
            b = list(range(8, 15))
            future = batcher.submit("calm", a, b)
            with telemetry.recording() as record:
                batcher.flush_pending()
            # admitted by the queue bound, so evaluated in one piece
            assert record.snapshot.phase("serve.batch").count == 1
            assert [int(v) for v in future.result()] == direct_products(
                "calm", a, b
            )

        run(scenario())

    def test_fusion_telemetry_counts_requests_and_pairs(self):
        async def scenario():
            batcher = MicroBatcher(sleep=NeverSleep())
            with telemetry.recording() as record:
                futures = [
                    batcher.submit("calm", [1, 2], [3, 4]),
                    batcher.submit("calm", [5], [6]),
                ]
                batcher.flush_pending()
                await asyncio.gather(*futures)
            snapshot = record.snapshot
            assert snapshot.counter("serve.requests") == 2
            assert snapshot.counter("serve.shed") == 0
            assert snapshot.phase("serve.batch").count == 1
            assert snapshot.gauge("serve.queue_depth") == 0
            assert 0 < snapshot.gauge("serve.batch_occupancy") <= 1

        run(scenario())


# ----------------------------------------------------------------------
# Backpressure: the bounded queue sheds at exactly max_queue
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_sheds_at_exactly_the_configured_bound(self):
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=8), sleep=NeverSleep()
            )
            futures = [batcher.submit("calm", [i], [i]) for i in range(8)]
            assert batcher.depth == 8
            # pair 9 crosses the bound: shed, not enqueued
            with pytest.raises(ShedError) as info:
                batcher.submit("calm", [9], [9])
            assert info.value.depth == 8 and info.value.limit == 8
            assert batcher.depth == 8  # the shed request occupied nothing
            batcher.flush_pending()
            assert batcher.depth == 0
            for i, future in enumerate(futures):
                assert future.result()[0] == build("calm").multiply(i, i)
            # after the flush the queue accepts work again
            batcher.submit("calm", [1], [1])

        run(scenario())

    def test_vector_request_counts_in_pairs_not_requests(self):
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=8), sleep=NeverSleep()
            )
            batcher.submit("calm", list(range(6)), list(range(6)))
            # 6 of 8 pairs used: a 5-pair request is shed ...
            with pytest.raises(ShedError):
                batcher.submit("calm", list(range(5)), list(range(5)))
            # ... but a 2-pair request still fits exactly
            batcher.submit("calm", [1, 2], [3, 4])
            assert batcher.depth == 8

        run(scenario())

    def test_shed_is_counted_and_validated_first(self):
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=1), sleep=NeverSleep()
            )
            batcher.submit("calm", [1], [1])
            with telemetry.recording() as record:
                with pytest.raises(ShedError):
                    batcher.submit("calm", [2], [2])
            assert record.snapshot.counter("serve.shed") == 1
            # invalid requests fail their own way even when full: they
            # must never be reported as overload
            with pytest.raises(KeyError):
                batcher.submit("no-such-design", [1], [1])
            with pytest.raises(ValueError):
                batcher.submit("calm", [1 << 16], [1])

        run(scenario())


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_drain_resolves_everything_admitted(self):
        async def scenario():
            gate = NeverSleep()
            batcher = MicroBatcher(sleep=gate)
            batcher.start()
            requests = [([i, i + 1], [i + 2, i + 3]) for i in range(5)]
            futures = [batcher.submit("calm", a, b) for a, b in requests]
            # let the flusher reach its (never-firing) latency gate
            for _ in range(10):
                await asyncio.sleep(0)
            assert gate.calls == 1
            assert not any(f.done() for f in futures)
            await batcher.drain()
            for (a, b), future in zip(requests, futures):
                assert [int(v) for v in future.result()] == direct_products(
                    "calm", a, b
                )
            assert batcher.closing
            with pytest.raises(ShedError):
                batcher.submit("calm", [1], [1])

        run(scenario())

    def test_drained_service_refuses_with_shutting_down(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            await service.drain()
            with pytest.raises(ServeError) as info:
                await client.multiply("calm", 3, 4)
            assert info.value.code == "shutting-down"
            # liveness stays answerable while draining
            status = await client.ping()
            assert status["draining"] is True

        run(scenario())


# ----------------------------------------------------------------------
# Service + in-process transport
# ----------------------------------------------------------------------


class TestService:
    @pytest.mark.parametrize("design", FAMILIES)
    def test_served_vector_multiply_is_bit_identical(self, design):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            rng = np.random.default_rng([7, len(design)])
            a = rng.integers(0, 1 << 16, size=32).tolist()
            b = rng.integers(0, 1 << 16, size=32).tolist()
            task = asyncio.ensure_future(client.multiply(design, a, b))
            await asyncio.sleep(0)
            service.batcher.flush_pending()
            assert await task == direct_products(design, a, b)

        run(scenario())

    def test_scalar_multiply_round_trip(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            task = asyncio.ensure_future(client.multiply("accurate", 123, 456))
            await asyncio.sleep(0)
            service.batcher.flush_pending()
            assert await task == 123 * 456

        run(scenario())

    def test_error_codes_reach_the_client(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            with pytest.raises(ServeError) as info:
                await client.multiply("no-such-design", 1, 2)
            assert info.value.code == "unknown-design"
            with pytest.raises(ServeError) as info:
                await client.multiply("calm", 1 << 16, 2)
            assert info.value.code == "bad-operands"
            with pytest.raises(ServeError) as info:
                await client.call({"op": "frobnicate"})
            assert info.value.code == "bad-request"

        run(scenario())

    def test_handle_line_is_total(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            for bad in (b"{oops\n", b"\xff\xfe", b"[1,2]\n", b'"x"\n'):
                response = decode_frame(await service.handle_line(bad))
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-frame"

        run(scenario())

    def test_designs_listing_and_prefix(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            listing = await client.designs()
            assert {d["id"] for d in listing} == set(names())
            realm = await client.designs(prefix="realm16-")
            assert realm and all(
                d["id"].startswith("realm16-") and d["family"] == "REALM"
                for d in realm
            )

        run(scenario())

    def test_ping_reports_protocol_and_queue(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            status = await client.ping()
            assert status["protocol"] == 1
            assert status["queue_depth"] == 0
            assert status["draining"] is False

        run(scenario())

    def test_model_cache_shares_instances(self):
        cache = ModelCache()
        assert cache.get("calm") is cache.get("calm")
        assert cache.get("calm", 16) is not cache.get("calm", 8)
        with pytest.raises(KeyError):
            cache.get("no-such-design")


# ----------------------------------------------------------------------
# Sustained overload: the seeded client fleet
# ----------------------------------------------------------------------


class TestOverloadFleet:
    def test_nothing_lost_nothing_crossed_under_overload(self):
        """The ISSUE acceptance scenario: a fleet far beyond capacity.

        accepted + shed == sent; every shed is a structured
        ``overloaded`` error; every accepted response carries exactly
        its own request's product (no corruption, no reordering)."""

        async def scenario():
            max_queue = 16
            fleet = 50
            service = Service(
                policy=BatchPolicy(max_queue=max_queue), sleep=NeverSleep()
            )
            client = InProcessClient(service)
            rng = np.random.default_rng(2020)
            operands = [
                (int(rng.integers(0, 1 << 16)), int(rng.integers(0, 1 << 16)))
                for _ in range(fleet)
            ]
            with telemetry.recording() as record:
                tasks = [
                    asyncio.ensure_future(client.multiply("calm", a, b))
                    for a, b in operands
                ]
                # every task either parks on its future or sheds
                for _ in range(10 * fleet):
                    if (
                        sum(t.done() for t in tasks) + service.batcher.depth
                        == fleet
                    ):
                        break
                    await asyncio.sleep(0)
                service.batcher.flush_pending()
                outcomes = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
            accepted = [o for o in outcomes if isinstance(o, int)]
            shed = [o for o in outcomes if isinstance(o, ServeError)]
            assert len(accepted) + len(shed) == fleet
            assert len(accepted) == max_queue  # full capacity, no more
            assert all(error.code == "overloaded" for error in shed)
            # no cross-wiring: each answer is its own request's product
            model = build("calm")
            for (a, b), outcome in zip(operands, outcomes):
                if isinstance(outcome, int):
                    assert outcome == int(model.multiply(a, b))
            snapshot = record.snapshot
            assert snapshot.counter("serve.shed") == fleet - max_queue
            assert snapshot.counter("serve.requests") == max_queue

        run(scenario())

    def test_repeated_overload_waves_stay_consistent(self):
        async def scenario():
            service = Service(
                policy=BatchPolicy(max_queue=4), sleep=NeverSleep()
            )
            client = InProcessClient(service)
            model = build("calm")
            for wave in range(5):
                tasks = [
                    asyncio.ensure_future(
                        client.multiply("calm", wave * 10 + i, i + 1)
                    )
                    for i in range(8)
                ]
                for _ in range(100):
                    if sum(t.done() for t in tasks) + service.batcher.depth == 8:
                        break
                    await asyncio.sleep(0)
                service.batcher.flush_pending()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                products = [o for o in outcomes if isinstance(o, int)]
                errors = [o for o in outcomes if isinstance(o, ServeError)]
                assert len(products) == 4 and len(errors) == 4
                for i, outcome in enumerate(outcomes):
                    if isinstance(outcome, int):
                        assert outcome == int(
                            model.multiply(wave * 10 + i, i + 1)
                        )

        run(scenario())


# ----------------------------------------------------------------------
# Characterize through the serving layer
# ----------------------------------------------------------------------


class TestCharacterizeThroughServe:
    def test_served_metrics_match_direct_engine_call(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            result = await client.characterize(
                "calm", samples=1 << 12, seed=7
            )
            direct = characterize(build("calm"), samples=1 << 12, seed=7)
            assert result["metrics"] == dataclasses.asdict(direct)
            assert result["samples"] == 1 << 12 and result["seed"] == 7

        run(scenario())

    def test_unknown_design_characterize(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            with pytest.raises(ServeError) as info:
                await client.characterize("nope")
            assert info.value.code == "unknown-design"

        run(scenario())


# ----------------------------------------------------------------------
# TCP transport (real sockets, loopback, ephemeral port)
# ----------------------------------------------------------------------


class TestTcpTransport:
    def test_pipelined_requests_over_tcp(self):
        async def scenario():
            service = Service(policy=BatchPolicy(max_latency=0.001))
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            try:
                async with await AsyncClient.connect(host, port) as client:
                    rng = np.random.default_rng(11)
                    jobs = [
                        (
                            int(rng.integers(0, 1 << 16)),
                            int(rng.integers(0, 1 << 16)),
                        )
                        for _ in range(10)
                    ]
                    products = await asyncio.gather(
                        *(client.multiply("calm", a, b) for a, b in jobs)
                    )
                    model = build("calm")
                    for (a, b), product in zip(jobs, products):
                        assert product == int(model.multiply(a, b))
                    status = await client.ping()
                    assert status["protocol"] == 1
            finally:
                await server.close()

        run(scenario())

    def test_malformed_tcp_frame_gets_structured_error(self):
        async def scenario():
            service = Service(policy=BatchPolicy(max_latency=0.001))
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                response = decode_frame(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-frame"
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()

        run(scenario())

    def test_server_close_is_a_graceful_drain(self):
        async def scenario():
            service = Service(policy=BatchPolicy(max_latency=0.001))
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            async with await AsyncClient.connect(host, port) as client:
                assert await client.multiply("accurate", 6, 7) == 42
            await server.close()
            assert service.draining
            assert service.batcher.closing

        run(scenario())


# ----------------------------------------------------------------------
# Connection teardown: a vanishing client must not wedge anything
# ----------------------------------------------------------------------


class TestConnectionTeardown:
    def test_abrupt_close_under_pending_batches(self):
        """Regression: a client that RSTs with batches still queued must
        not wedge the batcher, leak queue slots, or stall the drain."""

        async def scenario():
            gate = NeverSleep()
            service = Service(sleep=gate)
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            for i in (1, 2):
                writer.write(
                    encode_frame(
                        {"op": "multiply", "design": "calm",
                         "a": [3 * i], "b": [4 * i], "id": i}
                    )
                )
            await writer.drain()
            # wait until both requests are admitted into the batcher
            while service.batcher.depth < 2:
                await asyncio.sleep(0)
            writer.transport.abort()  # abrupt death: RST, no goodbye
            await asyncio.sleep(0)
            service.batcher.flush_pending()
            for _ in range(20):
                await asyncio.sleep(0)
            assert service.batcher.depth == 0  # no leaked queue slots
            # a healthy client is still served by the same batcher
            async with await AsyncClient.connect(host, port) as client:
                task = asyncio.ensure_future(client.multiply("calm", 7, 8))
                while service.batcher.depth < 1:
                    await asyncio.sleep(0)
                service.batcher.flush_pending()
                assert await asyncio.wait_for(task, 5) == direct_products(
                    "calm", [7], [8]
                )[0]
            # and the drain is not wedged by the dead connection
            await asyncio.wait_for(server.close(), 5)

        run(scenario())


# ----------------------------------------------------------------------
# Client reconnect-and-retry (idempotent ops only)
# ----------------------------------------------------------------------


class FlakyFront:
    """A TCP front that kills connections on demand, else serves.

    While ``drop_next`` is positive, the next received frame aborts its
    connection without a reply — the shape of a worker crash
    mid-request.  Everything else delegates to a real :class:`Service`.
    Per-id handling counts let tests assert retries never silently
    duplicate work.
    """

    def __init__(self, service):
        self.service = service
        self.drop_next = 0
        self.connections = 0
        self.handled: dict[object, int] = {}

    async def on_connect(self, reader, writer):
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if self.drop_next > 0:
                    self.drop_next -= 1
                    writer.transport.abort()
                    return
                obj = decode_frame(line)
                self.handled[obj.get("id")] = (
                    self.handled.get(obj.get("id"), 0) + 1
                )
                writer.write(await self.service.handle_line(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()


async def flaky_front():
    service = Service(policy=BatchPolicy(max_latency=0.0005))
    service.start()
    front = FlakyFront(service)
    server = await asyncio.start_server(front.on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return service, front, server, port


class TestClientRetry:
    def test_retry_recovers_from_dropped_connection(self):
        async def scenario():
            service, front, server, port = await flaky_front()
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, retries=2, retry_backoff=0.001
                )
                front.drop_next = 1
                assert await client.multiply("accurate", 6, 7) == 42
                assert front.connections == 2  # one drop, one success
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())

    def test_no_retries_means_transport_error_surfaces(self):
        async def scenario():
            service, front, server, port = await flaky_front()
            try:
                client = await AsyncClient.connect("127.0.0.1", port)
                front.drop_next = 1
                with pytest.raises(ConnectionError):
                    await client.multiply("accurate", 6, 7)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())

    def test_retries_never_duplicate_or_reorder_by_id(self):
        async def scenario():
            service, front, server, port = await flaky_front()
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, retries=3, retry_backoff=0.001
                )
                # drop the first attempt of each burst; every request
                # must still resolve to its own product under its own id
                jobs = [(i + 1, i + 11) for i in range(6)]
                front.drop_next = 1
                first = await asyncio.gather(
                    *(client.multiply("accurate", a, b) for a, b in jobs[:3])
                )
                front.drop_next = 1
                second = await asyncio.gather(
                    *(client.multiply("accurate", a, b) for a, b in jobs[3:])
                )
                for (a, b), product in zip(jobs, first + second):
                    assert product == a * b
                # the server handled each id at least once and no id was
                # handled twice (the drop happened before dispatch), so
                # a retry can only re-present the same idempotent request
                assert all(count == 1 for count in front.handled.values())
                assert len(front.handled) == len(jobs)
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())

    def test_structured_errors_are_never_retried(self):
        async def scenario():
            service, front, server, port = await flaky_front()
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, retries=3, retry_backoff=0.001
                )
                with pytest.raises(ServeError) as info:
                    await client.multiply("no-such-design", 1, 2)
                assert info.value.code == "unknown-design"
                assert front.connections == 1  # the answer stood; no redial
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())

    def test_characterize_is_not_idempotent_no_retry(self):
        async def scenario():
            service, front, server, port = await flaky_front()
            try:
                client = await AsyncClient.connect(
                    "127.0.0.1", port, retries=3, retry_backoff=0.001
                )
                front.drop_next = 1
                with pytest.raises(ConnectionError):
                    await client.characterize("accurate", samples=16)
                assert front.connections == 1
                await client.close()
            finally:
                server.close()
                await server.wait_closed()
                await service.drain()

        run(scenario())


# ----------------------------------------------------------------------
# Drain-vs-shed races: exactly one outcome per request
# ----------------------------------------------------------------------


class TestDrainVsShedRace:
    @pytest.mark.parametrize("seed", range(10))
    def test_exactly_one_of_reply_overloaded_shutting_down(self, seed):
        """Whatever the shutdown timing, every request gets exactly one
        of {reply, ``overloaded``, ``shutting-down``} — never silence."""

        async def scenario():
            rng = np.random.default_rng([97, seed])
            service = Service(
                policy=BatchPolicy(max_queue=6), sleep=NeverSleep()
            )
            service.start()
            client = InProcessClient(service)
            total = 24
            drain_at = int(rng.integers(0, total))
            outcomes: dict[int, tuple] = {}

            async def one(i):
                try:
                    got = await client.multiply("accurate", [i], [i + 1])
                    outcome = ("ok", got)
                except ServeError as exc:
                    outcome = (exc.code, None)
                assert i not in outcomes  # exactly one outcome per request
                outcomes[i] = outcome

            drain_task = None
            tasks = []
            for i in range(total):
                tasks.append(asyncio.ensure_future(one(i)))
                for _ in range(int(rng.integers(0, 3))):
                    await asyncio.sleep(0)
                if i == drain_at:
                    drain_task = asyncio.ensure_future(service.drain())
                    for _ in range(int(rng.integers(0, 3))):
                        await asyncio.sleep(0)
            if drain_task is None:  # pragma: no cover - range guards this
                drain_task = asyncio.ensure_future(service.drain())
            await asyncio.gather(*tasks)
            await drain_task
            assert len(outcomes) == total
            replied = 0
            for i, (kind, got) in sorted(outcomes.items()):
                assert kind in ("ok", "overloaded", "shutting-down"), kind
                if kind == "ok":
                    replied += 1
                    assert got == [i * (i + 1)]  # its own product, uncorrupted
            assert replied >= 1  # at least the earliest admissions resolve

        run(scenario())


# ----------------------------------------------------------------------
# Readiness (status op)
# ----------------------------------------------------------------------


class TestReadiness:
    def test_status_reflects_drain_state(self):
        async def scenario():
            service = Service(sleep=NeverSleep())
            client = InProcessClient(service)
            status = await client.call({"op": "status"})
            assert status["ready"] is True
            assert status["role"] == "service"
            assert isinstance(status["queue_depth"], int)
            await service.drain()
            status = await client.call({"op": "status"})  # still answerable
            assert status["ready"] is False
            assert status["draining"] is True

        run(scenario())

    def test_status_over_tcp(self):
        async def scenario():
            service = Service(policy=BatchPolicy(max_latency=0.001))
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            try:
                async with await AsyncClient.connect(host, port) as client:
                    status = await client.call({"op": "status"})
                    assert status["ready"] is True
            finally:
                await server.close()

        run(scenario())
