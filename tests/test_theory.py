"""Tests closing the loop between the paper's math and its experiment."""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import characterize
from repro.core.realm import RealmMultiplier
from repro.core.theory import mitchell_bias, predict_metrics


class TestMitchellTheory:
    def test_bias_is_minus_3_85(self):
        assert mitchell_bias() == pytest.approx(-3.85, abs=0.005)


class TestRealmTheory:
    @pytest.mark.parametrize(
        "m,expected",
        [
            # Table I's t=0 rows: (bias, ME, var, peak_min, peak_max)
            (4, (-0.02, 1.38, 3.07, -5.71, 5.21)),
            (8, (-0.05, 0.75, 0.92, -3.70, 2.88)),
            (16, (0.01, 0.42, 0.28, -2.08, 1.79)),
        ],
    )
    def test_predicts_table1_rows(self, m, expected):
        theory = predict_metrics(m, q=6)
        bias, mean_error, variance, peak_min, peak_max = expected
        assert theory.bias == pytest.approx(bias, abs=0.04)
        assert theory.mean_error == pytest.approx(mean_error, abs=0.01)
        assert theory.variance == pytest.approx(variance, abs=0.02)
        assert theory.peak_min == pytest.approx(peak_min, abs=0.03)
        assert theory.peak_max == pytest.approx(peak_max, abs=0.03)

    def test_ideal_factors_zero_bias(self):
        # Eq. 8 forces the average error of every segment to zero, so the
        # unquantized design is exactly unbiased
        # tolerance reflects the Gauss-Legendre residual across the
        # anti-diagonal kink, ~1e-6 percent
        theory = predict_metrics(8, q=None)
        assert theory.bias == pytest.approx(0.0, abs=1e-4)

    def test_quantization_costs_accuracy(self):
        coarse = predict_metrics(16, q=4)
        fine = predict_metrics(16, q=None)
        assert coarse.mean_error > fine.mean_error

    def test_matches_monte_carlo(self):
        # the MC estimate must converge on the integral
        theory = predict_metrics(8, q=6)
        measured = characterize(RealmMultiplier(m=8, t=0), samples=1 << 21)
        assert measured.mean_error == pytest.approx(theory.mean_error, abs=0.01)
        assert measured.bias == pytest.approx(theory.bias, abs=0.02)
        assert measured.variance == pytest.approx(theory.variance, abs=0.02)

    def test_error_shrinks_with_m(self):
        errors = [predict_metrics(m, q=None).mean_error for m in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(errors, errors[1:]))
        # each doubling of M roughly halves the mean error (first-order
        # behavior of piecewise-constant correction of a smooth surface)
        assert errors[2] / errors[3] == pytest.approx(2.0, abs=0.5)

    def test_cached(self):
        assert predict_metrics(4) is predict_metrics(4)
