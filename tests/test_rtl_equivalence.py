"""Functional-vs-structural equivalence for every design in the catalog.

This is the library's strongest correctness statement: for each registry
configuration, the gate-level netlist (what the synthesis numbers are
computed from) and the NumPy functional model (what the error numbers are
computed from) must agree bit for bit on randomized vectors plus the
corner cases (zeros, ones, powers of two, saturating operands).

At 8 bits the statement is *exhaustive*: every design buildable at that
width is checked over all 256x256 operand pairs.  The full sweep is
``nightly``-marked (set ``REPRO_NIGHTLY=1``); a seeded 4k-pair slice of
the same grid runs in every tier-1 invocation.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.circuits.catalog import NETLISTS, netlist_for
from repro.circuits.ssm_rtl import essm_netlist, ssm_netlist
from repro.logic.sim import evaluate_words
from repro.multipliers.registry import REGISTRY, build
from repro.multipliers.ssm import EssmMultiplier, SsmMultiplier

CORNERS = np.array(
    [0, 1, 2, 3, 5, 255, 256, 4095, 4096, 32767, 32768, 65534, 65535],
    dtype=np.int64,
)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0xC0DE)
    a = np.concatenate([np.repeat(CORNERS, len(CORNERS)), rng.integers(0, 1 << 16, 1200)])
    b = np.concatenate([np.tile(CORNERS, len(CORNERS)), rng.integers(0, 1 << 16, 1200)])
    return a, b


def test_catalog_covers_registry():
    assert set(NETLISTS) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(NETLISTS))
def test_netlist_matches_functional_model(name, vectors):
    a, b = vectors
    netlist = netlist_for(name, 16)
    model = build(name, 16)
    got = evaluate_words(netlist, [netlist.inputs[:16], netlist.inputs[16:]], [a, b])
    want = model.multiply(a, b)
    mismatches = np.nonzero(got != want)[0]
    assert mismatches.size == 0, (
        f"{name}: {mismatches.size} mismatches, first at "
        f"a={a[mismatches[0]]}, b={b[mismatches[0]]}: "
        f"netlist={got[mismatches[0]]} model={want[mismatches[0]]}"
    )


@pytest.mark.parametrize(
    "name", ["accurate", "calm", "realm8-t2", "drum-k6", "ssm-m8"]
)
def test_equivalence_at_12_bits(name, vectors):
    # width-genericity: the generators are parameterized by bitwidth
    a, b = vectors
    a = a & 0xFFF
    b = b & 0xFFF
    netlist = netlist_for(name, 12)
    model = build(name, 12)
    got = evaluate_words(netlist, [netlist.inputs[:12], netlist.inputs[12:]], [a, b])
    assert np.array_equal(got, model.multiply(a, b))


@pytest.mark.parametrize("name", ["realm16-t0", "realm4-t9", "mbm-t0"])
def test_realm_output_width_covers_overflow(name):
    # the paper's special case 1: 2N+1-bit outputs for near-max operands
    netlist = netlist_for(name, 16)
    assert len(netlist.outputs) == 33


def test_non_overflowing_designs_use_2n_outputs():
    for name in ("calm", "drum-k8", "ssm-m9", "intalp-l2", "accurate"):
        assert len(netlist_for(name, 16).outputs) == 32


# ----------------------------------------------------------------------
# Exhaustive 8-bit model-vs-RTL sweep
# ----------------------------------------------------------------------


def _eightbit_ids() -> list[str]:
    """Registry ids whose parameters are valid at 8 bits.

    Some configurations are 16-bit-only (SSM/ESSM segment widths ``m >=
    8`` need ``m < N``; high-``t`` REALM truncations leave no fraction
    at ``N = 8``) — their constructors raise ``ValueError`` and they are
    excluded here, with the families still covered via the custom pairs
    in ``EXTRA_8BIT_PAIRS``.
    """
    names = []
    for name in sorted(NETLISTS):
        try:
            build(name, 8)
        except ValueError:
            continue
        names.append(name)
    return names


EIGHTBIT_IDS = _eightbit_ids()

#: (label, model, netlist) pairs covering the families whose *registry*
#: parameterizations do not fit in 8 bits (SSM/ESSM need m < 8)
EXTRA_8BIT_PAIRS = [
    ("ssm8-m6", SsmMultiplier(8, m=6), ssm_netlist(8, m=6)),
    ("ssm8-m4", SsmMultiplier(8, m=4), ssm_netlist(8, m=4)),
    ("essm8-m6", EssmMultiplier(8, m=6), essm_netlist(8, m=6)),
    ("essm8-m4", EssmMultiplier(8, m=4), essm_netlist(8, m=4)),
]


def _assert_equivalent_8bit(label, model, netlist, a, b):
    got = evaluate_words(netlist, [netlist.inputs[:8], netlist.inputs[8:]], [a, b])
    want = model.multiply(a, b)
    mismatches = np.nonzero(got != want)[0]
    assert mismatches.size == 0, (
        f"{label}: {mismatches.size}/{a.size} mismatches, first at "
        f"a={a[mismatches[0]]}, b={b[mismatches[0]]}: "
        f"netlist={got[mismatches[0]]} model={want[mismatches[0]]}"
    )


@pytest.fixture(scope="module")
def slice8(exhaustive8):
    """A seeded 4096-pair slice of the exhaustive 8-bit grid (tier-1)."""
    a, b = exhaustive8
    picks = np.random.default_rng(0x8B17).choice(a.size, 4096, replace=False)
    return a[picks], b[picks]


def test_every_eightbit_family_is_covered():
    # every RTL family present in the catalog has 8-bit coverage, either
    # through its registry ids or through a custom pair
    covered = {build(name, 8).family for name in EIGHTBIT_IDS}
    covered |= {model.family for _, model, _ in EXTRA_8BIT_PAIRS}
    targets = {
        "cALM", "REALM", "DRUM", "SSM", "ESSM", "ImpLM", "IntALP", "AM1", "AM2",
        "scaleTRIM", "DNNCO",
    }
    missing = targets - covered
    assert not missing, f"families without 8-bit equivalence coverage: {missing}"


@pytest.mark.parametrize("name", EIGHTBIT_IDS)
def test_eightbit_slice_matches_model(name, slice8):
    a, b = slice8
    _assert_equivalent_8bit(name, build(name, 8), netlist_for(name, 8), a, b)


@pytest.mark.parametrize("label, model, netlist", EXTRA_8BIT_PAIRS)
def test_eightbit_slice_matches_model_extra(label, model, netlist, slice8):
    a, b = slice8
    _assert_equivalent_8bit(label, model, netlist, a, b)


@pytest.mark.nightly
@pytest.mark.skipif(
    not os.environ.get("REPRO_NIGHTLY"),
    reason="full 256x256 sweep runs in the nightly job (set REPRO_NIGHTLY=1)",
)
@pytest.mark.parametrize("name", EIGHTBIT_IDS)
def test_eightbit_exhaustive_matches_model(name, exhaustive8):
    a, b = exhaustive8
    _assert_equivalent_8bit(name, build(name, 8), netlist_for(name, 8), a, b)


@pytest.mark.nightly
@pytest.mark.skipif(
    not os.environ.get("REPRO_NIGHTLY"),
    reason="full 256x256 sweep runs in the nightly job (set REPRO_NIGHTLY=1)",
)
@pytest.mark.parametrize("label, model, netlist", EXTRA_8BIT_PAIRS)
def test_eightbit_exhaustive_matches_model_extra(label, model, netlist, exhaustive8):
    a, b = exhaustive8
    _assert_equivalent_8bit(label, model, netlist, a, b)
