"""Functional-vs-structural equivalence for every design in the catalog.

This is the library's strongest correctness statement: for each registry
configuration, the gate-level netlist (what the synthesis numbers are
computed from) and the NumPy functional model (what the error numbers are
computed from) must agree bit for bit on randomized vectors plus the
corner cases (zeros, ones, powers of two, saturating operands).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.catalog import NETLISTS, netlist_for
from repro.logic.sim import evaluate_words
from repro.multipliers.registry import REGISTRY, build

CORNERS = np.array(
    [0, 1, 2, 3, 5, 255, 256, 4095, 4096, 32767, 32768, 65534, 65535],
    dtype=np.int64,
)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0xC0DE)
    a = np.concatenate([np.repeat(CORNERS, len(CORNERS)), rng.integers(0, 1 << 16, 1200)])
    b = np.concatenate([np.tile(CORNERS, len(CORNERS)), rng.integers(0, 1 << 16, 1200)])
    return a, b


def test_catalog_covers_registry():
    assert set(NETLISTS) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(NETLISTS))
def test_netlist_matches_functional_model(name, vectors):
    a, b = vectors
    netlist = netlist_for(name, 16)
    model = build(name, 16)
    got = evaluate_words(netlist, [netlist.inputs[:16], netlist.inputs[16:]], [a, b])
    want = model.multiply(a, b)
    mismatches = np.nonzero(got != want)[0]
    assert mismatches.size == 0, (
        f"{name}: {mismatches.size} mismatches, first at "
        f"a={a[mismatches[0]]}, b={b[mismatches[0]]}: "
        f"netlist={got[mismatches[0]]} model={want[mismatches[0]]}"
    )


@pytest.mark.parametrize(
    "name", ["accurate", "calm", "realm8-t2", "drum-k6", "ssm-m8"]
)
def test_equivalence_at_12_bits(name, vectors):
    # width-genericity: the generators are parameterized by bitwidth
    a, b = vectors
    a = a & 0xFFF
    b = b & 0xFFF
    netlist = netlist_for(name, 12)
    model = build(name, 12)
    got = evaluate_words(netlist, [netlist.inputs[:12], netlist.inputs[12:]], [a, b])
    assert np.array_equal(got, model.multiply(a, b))


@pytest.mark.parametrize("name", ["realm16-t0", "realm4-t9", "mbm-t0"])
def test_realm_output_width_covers_overflow(name):
    # the paper's special case 1: 2N+1-bit outputs for near-max operands
    netlist = netlist_for(name, 16)
    assert len(netlist.outputs) == 33


def test_non_overflowing_designs_use_2n_outputs():
    for name in ("calm", "drum-k8", "ssm-m9", "intalp-l2", "accurate"):
        assert len(netlist_for(name, 16).outputs) == 32
