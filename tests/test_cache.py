"""Tests for the on-disk metrics cache and config fingerprinting."""

from __future__ import annotations

import json
import os
import time

from repro.analysis.cache import (
    STALE_TEMP_SECONDS,
    cache_key,
    cache_stats,
    clear_cache,
    invalidate,
    load_metrics,
    reset_cache_stats,
    resolve_cache_dir,
    sweep_stale_temps,
)
from repro.analysis.montecarlo import (
    characterize,
    characterize_workload,
    gaussian_sampler,
)
from repro.core.realm import RealmMultiplier
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.registry import build, fingerprint

#: multiply-call counter shared by CountingAccurate instances; module-level
#: so the instances carry no mutable attributes into their fingerprints
CALLS = {"n": 0}


class CountingAccurate(AccurateMultiplier):
    def _multiply(self, a, b):
        CALLS["n"] += 1
        return super()._multiply(a, b)


class TestCacheRoundtrip:
    def test_hit_skips_multiply_and_equals_miss(self, tmp_path):
        multiplier = CountingAccurate()
        CALLS["n"] = 0
        first = characterize(multiplier, samples=1 << 14, cache=tmp_path)
        assert CALLS["n"] > 0
        CALLS["n"] = 0
        second = characterize(multiplier, samples=1 << 14, cache=tmp_path)
        assert CALLS["n"] == 0  # served from disk, multiply never ran
        assert second == first  # bit-exact float round-trip through JSON

    def test_stats_count_hits_and_misses(self, tmp_path):
        reset_cache_stats()
        multiplier = RealmMultiplier(m=4)
        characterize(multiplier, samples=1 << 13, cache=tmp_path)
        characterize(multiplier, samples=1 << 13, cache=tmp_path)
        stats = cache_stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.stores == 1

    def test_progress_reports_cache_outcome(self, tmp_path):
        events = []
        multiplier = RealmMultiplier(m=4)
        characterize(
            multiplier, samples=1 << 13, cache=tmp_path, progress=events.append
        )
        characterize(
            multiplier, samples=1 << 13, cache=tmp_path, progress=events.append
        )
        outcomes = [e["cache"] for e in events if e["event"] == "done"]
        assert outcomes == ["miss", "hit"]

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        multiplier = RealmMultiplier(m=4)
        first = characterize(multiplier, samples=1 << 13, cache=tmp_path)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{not json")
        second = characterize(multiplier, samples=1 << 13, cache=tmp_path)
        assert second == first
        # the entry was repaired and now loads cleanly
        assert json.loads(entry.read_text())["metrics"]["samples"] > 0

    def test_rejects_entry_with_wrong_fields(self, tmp_path):
        multiplier = RealmMultiplier(m=4)
        first = characterize(multiplier, samples=1 << 13, cache=tmp_path)
        (entry,) = tmp_path.glob("*.json")
        data = json.loads(entry.read_text())
        data["metrics"].pop("bias")
        entry.write_text(json.dumps(data))
        key = entry.stem
        assert load_metrics(tmp_path, key) is None
        assert characterize(multiplier, samples=1 << 13, cache=tmp_path) == first

    def test_workload_runs_cache_too(self, tmp_path):
        realm = RealmMultiplier(m=4)
        sampler = gaussian_sampler(16)
        first = characterize_workload(
            realm, sampler, samples=1 << 13, cache=tmp_path
        )
        reset_cache_stats()
        second = characterize_workload(
            realm, sampler, samples=1 << 13, cache=tmp_path
        )
        assert second == first
        assert cache_stats().hits == 1

    def test_unfingerprintable_sampler_skips_cache(self, tmp_path):
        realm = RealmMultiplier(m=4)
        high = (1 << 16) - 1

        def sampler(rng, n):  # a closure: no stable fingerprint
            return rng.integers(0, high, n), rng.integers(0, high, n)

        characterize_workload(realm, sampler, samples=1 << 13, cache=tmp_path)
        assert list(tmp_path.glob("*.json")) == []


class TestCacheKeys:
    def test_key_changes_with_design_knobs_and_seed(self, tmp_path):
        # (M, t, q) and seed all land on distinct entries
        runs = [
            (RealmMultiplier(m=8, t=0), 2020),
            (RealmMultiplier(m=4, t=0), 2020),
            (RealmMultiplier(m=8, t=3), 2020),
            (RealmMultiplier(m=8, t=0, q=5), 2020),
            (RealmMultiplier(m=8, t=0), 7),
        ]
        for multiplier, seed in runs:
            characterize(multiplier, samples=1 << 12, seed=seed, cache=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == len(runs)

    def test_key_changes_with_samples(self):
        base = {"design": fingerprint(RealmMultiplier(m=8)), "seed": 2020}
        assert cache_key({**base, "samples": 1 << 12}) != cache_key(
            {**base, "samples": 1 << 13}
        )

    def test_fingerprint_distinguishes_registry_designs(self):
        prints = [json.dumps(fingerprint(build(name)), sort_keys=True)
                  for name in ("realm16-t0", "realm16-t1", "calm", "drum-k6", "drum-k5")]
        assert len(set(prints)) == len(prints)

    def test_fingerprint_is_stable_across_instances(self):
        assert fingerprint(RealmMultiplier(m=8, t=2)) == fingerprint(
            RealmMultiplier(m=8, t=2)
        )

    def test_fingerprint_has_no_memory_addresses(self):
        # function-valued attributes (e.g. ALM's adder) must describe by
        # qualified name, or keys churn on every process
        for name in ("alm-soa-m9", "alm-maa-m3"):
            assert " at 0x" not in json.dumps(fingerprint(build(name)))


class TestCacheResolution:
    def test_off_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None
        assert resolve_cache_dir(False) is None

    def test_env_var_opts_in_globally(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache_dir(None) == tmp_path
        characterize(RealmMultiplier(m=4), samples=1 << 12)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_explicit_false_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        characterize(RealmMultiplier(m=4), samples=1 << 12, cache=False)
        assert list(tmp_path.glob("*.json")) == []

    def test_invalidate_and_clear(self, tmp_path):
        multiplier = RealmMultiplier(m=4)
        characterize(multiplier, samples=1 << 12, cache=tmp_path)
        characterize(multiplier, samples=1 << 13, cache=tmp_path)
        (entry, _) = sorted(tmp_path.glob("*.json"))
        assert invalidate(entry.stem, cache=tmp_path) is True
        assert invalidate(entry.stem, cache=tmp_path) is False
        assert clear_cache(tmp_path) == 1
        assert list(tmp_path.glob("*.json")) == []


def _backdate(path, age_seconds):
    past = time.time() - age_seconds
    os.utime(path, (past, past))


class TestStaleTempSweep:
    """Orphaned ``*.tmp<pid>`` files (a writer that died between write
    and rename) must be garbage-collected, never a live writer's file."""

    def test_sweeps_only_old_temps(self, tmp_path):
        orphan = tmp_path / "aaa.tmp123"
        orphan.write_text("x")
        _backdate(orphan, STALE_TEMP_SECONDS + 60)
        live = tmp_path / "bbb.tmp456"
        live.write_text("y")  # a concurrent writer: too young to sweep
        entry = tmp_path / "ccc.json"
        entry.write_text("{}")
        assert sweep_stale_temps(tmp_path) == 1
        assert not orphan.exists()
        assert live.exists() and entry.exists()

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert sweep_stale_temps(tmp_path / "never-created") == 0

    def test_cache_init_sweeps_orphans(self, tmp_path):
        orphan = tmp_path / "dead.tmp999"
        orphan.write_text("x")
        _backdate(orphan, STALE_TEMP_SECONDS + 60)
        # the first store into this directory garbage-collects it
        characterize(RealmMultiplier(m=4), samples=1 << 12, cache=tmp_path)
        assert not orphan.exists()
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_clear_cache_drops_checkpoints_and_temps(self, tmp_path):
        characterize(RealmMultiplier(m=4), samples=1 << 12, cache=tmp_path)
        ckpt_dir = tmp_path / "checkpoints"
        ckpt_dir.mkdir()
        (ckpt_dir / "run.json").write_text("{}")
        orphan = ckpt_dir / "run.tmp1"
        orphan.write_text("x")
        _backdate(orphan, STALE_TEMP_SECONDS + 60)
        assert clear_cache(tmp_path) == 2  # the entry + the checkpoint
        assert list(tmp_path.glob("*.json")) == []
        assert not (ckpt_dir / "run.json").exists()
        assert not orphan.exists()


class TestClearCacheSubsystems:
    """clear_cache must empty every store that lives under the cache
    directory, not just the top-level metrics entries — one regression
    per subsystem so a future store addition that forgets to register
    its glob fails here by name."""

    def test_clears_formal_certificates(self, tmp_path):
        formal = tmp_path / "formal"
        formal.mkdir()
        (formal / "cert-a.json").write_text("{}")
        (formal / "cert-b.json").write_text("{}")
        assert clear_cache(tmp_path) == 2
        assert list(formal.glob("*.json")) == []

    def test_clears_conformance_counterexamples(self, tmp_path):
        conformance = tmp_path / "conformance"
        conformance.mkdir()
        (conformance / "campaign.json").write_text("{}")
        assert clear_cache(tmp_path) == 1
        assert list(conformance.glob("*.json")) == []

    def test_clears_checkpoints(self, tmp_path):
        checkpoints = tmp_path / "checkpoints"
        checkpoints.mkdir()
        (checkpoints / "sweep.json").write_text("{}")
        assert clear_cache(tmp_path) == 1
        assert list(checkpoints.glob("*.json")) == []

    def test_clears_warehouse_database_and_quarantines(self, tmp_path):
        warehouse = tmp_path / "warehouse"
        warehouse.mkdir()
        (warehouse / "warehouse.db").write_text("not a real db")
        (warehouse / "warehouse.db.corrupt-123").write_text("evidence")
        assert clear_cache(tmp_path) == 2
        assert list(warehouse.iterdir()) == []

    def test_clears_every_store_in_one_call(self, tmp_path):
        (tmp_path / ("a" * 64 + ".json")).write_text("{}")
        for name in ("checkpoints", "formal", "conformance", "warehouse"):
            (tmp_path / name).mkdir()
        (tmp_path / "checkpoints" / "run.json").write_text("{}")
        (tmp_path / "formal" / "cert.json").write_text("{}")
        (tmp_path / "conformance" / "campaign.json").write_text("{}")
        (tmp_path / "warehouse" / "warehouse.db").write_text("x")
        assert clear_cache(tmp_path) == 5
        for name in ("checkpoints", "formal", "conformance", "warehouse"):
            assert list((tmp_path / name).iterdir()) == []

    def test_sweeps_stale_temps_in_subdirectories(self, tmp_path):
        formal = tmp_path / "formal"
        formal.mkdir()
        orphan = formal / "cert.tmp42"
        orphan.write_text("x")
        _backdate(orphan, STALE_TEMP_SECONDS + 60)
        assert clear_cache(tmp_path) == 0  # temps are swept, not counted
        assert not orphan.exists()
