"""Telemetry subsystem tests: registry semantics, sinks, process safety.

Covers the ISSUE 3 acceptance surface:

* deterministic timings via injectable wall/CPU clocks (the same
  injection pattern the runtime uses for sleep/jitter);
* zero-overhead no-op behaviour when disabled;
* per-pid worker sink files merged by the parent after a pool drains;
* ``--trace`` CLI round trip whose summarized leaf-phase wall times sum
  to within 10% of the total runtime;
* cache hit/miss counters against a deliberately warmed cache;
* chaos interplay: retry/rebuild/degraded counters exactly matching the
  chaos harness's cross-process fault firing counts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import chaos, telemetry
from repro.analysis.chaos import CHAOS_ENV, ChaosPlan, FaultSpec
from repro.analysis.montecarlo import characterize, characterize_many
from repro.analysis.parallel import BLOCK
from repro.analysis.runtime import ResiliencePolicy
from repro.analysis.telemetry import (
    TELEMETRY_ENV,
    JsonlSink,
    MemorySink,
    PhaseStat,
    Telemetry,
    TelemetrySnapshot,
)
from repro.cli import main
from repro.multipliers.registry import build

#: no real sleeping between retries
FAST = dict(sleep=lambda s: None, jitter=lambda low, high: low)


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    """Every test starts and ends deactivated, with no env activation."""
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    telemetry.disable()
    chaos.uninstall()
    yield
    telemetry.disable()
    chaos.uninstall()


@pytest.fixture()
def calm():
    return build("calm")


def tick_clock(step=1.0):
    """A deterministic clock: each call advances by ``step``."""
    state = {"now": 0.0}

    def clock():
        value = state["now"]
        state["now"] += step
        return value

    return clock


class TestRegistry:
    def test_counters_accumulate(self):
        tele = Telemetry()
        tele.counter("a")
        tele.counter("a", 4)
        tele.counter("b", 2)
        snap = tele.snapshot()
        assert snap.counters == {"a": 5, "b": 2}

    def test_gauges_keep_last_value(self):
        tele = Telemetry()
        tele.gauge("rate", 1.0)
        tele.gauge("rate", 3.5)
        assert tele.snapshot().gauges == {"rate": 3.5}

    def test_deterministic_clock_injection(self):
        # wall advances 1s per call, cpu 0.25s: a span reads each clock
        # twice (enter + exit), so the measured durations are exact
        tele = Telemetry(MemorySink(), wall=tick_clock(1.0), cpu=tick_clock(0.25))
        with tele.span("phase", block=7):
            pass
        stat = tele.snapshot().phase("phase")
        assert stat == PhaseStat(count=1, wall=1.0, cpu=0.25)
        span_events = [r for r in tele.sink.records if r["event"] == "span"]
        assert len(span_events) == 1
        assert span_events[0]["wall"] == 1.0
        assert span_events[0]["cpu"] == 0.25
        assert span_events[0]["block"] == 7

    def test_spans_aggregate_per_name(self):
        tele = Telemetry(wall=tick_clock(1.0), cpu=tick_clock(0.5))
        for _ in range(3):
            with tele.span("phase"):
                pass
        stat = tele.snapshot().phase("phase")
        assert stat.count == 3
        assert stat.wall == pytest.approx(3.0)
        assert stat.cpu == pytest.approx(1.5)

    def test_span_records_even_when_body_raises(self):
        tele = Telemetry(wall=tick_clock(1.0))
        with pytest.raises(RuntimeError):
            with tele.span("phase"):
                raise RuntimeError("boom")
        assert tele.snapshot().phase("phase").count == 1

    def test_snapshot_delta(self):
        tele = Telemetry(wall=tick_clock(1.0), cpu=tick_clock(1.0))
        tele.counter("hits", 2)
        with tele.span("phase"):
            pass
        before = tele.snapshot()
        tele.counter("hits", 3)
        with tele.span("phase"):
            pass
        delta = tele.snapshot().delta(before)
        assert delta.counters == {"hits": 3}
        assert delta.phase("phase").count == 1
        # unchanged names drop out of the delta entirely
        tele.counter("other")
        assert "hits" not in tele.snapshot().delta(tele.snapshot()).counters

    def test_snapshot_is_immutable_copy(self):
        tele = Telemetry()
        tele.counter("a")
        snap = tele.snapshot()
        tele.counter("a")
        assert snap.counters == {"a": 1}
        assert isinstance(snap, TelemetrySnapshot)


class TestDisabled:
    def test_get_returns_disabled_singleton(self):
        tele = telemetry.get()
        assert tele is telemetry.DISABLED
        assert not tele.enabled

    def test_disabled_methods_are_noops(self):
        tele = telemetry.get()
        tele.counter("c")
        tele.gauge("g", 1.0)
        tele.event("e", detail="x")
        with tele.span("s"):
            pass
        snap = tele.snapshot()
        assert snap.counters == {} and snap.gauges == {} and snap.phases == {}

    def test_disabled_span_is_shared_noop(self):
        tele = telemetry.get()
        assert tele.span("a") is tele.span("b")

    def test_merge_workers_is_noop_when_disabled(self, tmp_path):
        (tmp_path / "events-1.jsonl").write_text(
            json.dumps({"event": "counter", "name": "x", "value": 1}) + "\n"
        )
        assert telemetry.merge_workers() == 0

    def test_engine_runs_without_telemetry(self, calm):
        # the full characterize path with the disabled singleton active
        metrics = characterize(calm, samples=1 << 12, cache=False)
        assert metrics.samples > 0
        assert telemetry.get().snapshot().phases == {}


class TestActivation:
    def test_env_activates_and_writes_per_pid_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path))
        tele = telemetry.get()
        assert tele.enabled
        tele.counter("x")
        own = tmp_path / f"events-{os.getpid()}.jsonl"
        assert own.exists()
        record = json.loads(own.read_text().splitlines()[0])
        assert record["name"] == "x" and record["pid"] == os.getpid()

    def test_get_is_cached_per_process(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path))
        assert telemetry.get() is telemetry.get()

    def test_enable_without_directory_is_memory_only(self, tmp_path):
        tele = telemetry.enable()
        tele.counter("x")
        assert tele.snapshot().counters == {"x": 1}
        assert TELEMETRY_ENV not in os.environ
        assert list(tmp_path.iterdir()) == []

    def test_disable_clears_activation(self, tmp_path):
        telemetry.enable(directory=tmp_path)
        telemetry.disable()
        assert telemetry.get() is telemetry.DISABLED
        assert TELEMETRY_ENV not in os.environ

    def test_recording_without_activation(self, calm):
        # with_telemetry=True must work with telemetry globally off
        metrics, snap = characterize(
            calm, samples=1 << 12, cache=False, with_telemetry=True
        )
        assert metrics.samples > 0
        assert snap.phase("characterize").count == 1
        assert snap.phase("mc.block").count == 1
        # ... and must not leave a registry behind
        assert telemetry.get() is telemetry.DISABLED


class TestSinks:
    def test_jsonl_sink_appends_and_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "a"})
        # flushed immediately: readable before close
        assert json.loads(path.read_text()) == {"event": "a"}
        sink.emit({"event": "b"})
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_corrupt_lines_are_skipped_on_read(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps({"event": "counter", "name": "x", "value": 2})
        path.write_text(good + "\n{truncated mid-wri")
        summary = telemetry.summarize_trace(path)
        assert summary["counters"] == {"x": 2}
        assert summary["events"] == 1


class TestWorkerMerge:
    def test_absorb_folds_counters_gauges_spans(self):
        tele = Telemetry(MemorySink())
        tele.absorb({"event": "counter", "name": "hits", "value": 2, "pid": 1})
        tele.absorb({"event": "gauge", "name": "rate", "value": 5.0, "pid": 1})
        tele.absorb(
            {"event": "span", "name": "mc.block", "wall": 0.5, "cpu": 0.25, "pid": 1}
        )
        snap = tele.snapshot()
        assert snap.counter("hits") == 2
        assert snap.gauges["rate"] == 5.0
        assert snap.phase("mc.block") == PhaseStat(1, 0.5, 0.25)
        # absorbed events are re-emitted into this process's sink verbatim
        assert len(tele.sink.records) == 3

    def test_merge_reads_removes_and_reemits_worker_files(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path))
        tele = telemetry.enable(directory=tmp_path)
        worker = tmp_path / "events-99999.jsonl"
        worker.write_text(
            json.dumps({"event": "counter", "name": "w", "value": 3, "t": 1.0})
            + "\n"
            + json.dumps(
                {"event": "span", "name": "mc.block", "wall": 0.1, "cpu": 0.1, "t": 0.5}
            )
            + "\n"
        )
        merged = telemetry.merge_workers(tele)
        assert merged == 2
        assert not worker.exists()
        snap = tele.snapshot()
        assert snap.counter("w") == 3
        assert snap.phase("mc.block").count == 1
        own = tmp_path / f"events-{os.getpid()}.jsonl"
        events = [json.loads(line) for line in own.read_text().splitlines()]
        assert any(r.get("name") == "w" for r in events)

    def test_merge_never_consumes_own_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path))
        tele = telemetry.enable(directory=tmp_path)
        tele.counter("mine")
        assert telemetry.merge_workers(tele) == 0
        assert (tmp_path / f"events-{os.getpid()}.jsonl").exists()

    def test_pooled_run_merges_worker_events(self, tmp_path, calm):
        """The acceptance case: a 2-worker run leaves exactly one merged
        parent file whose mc.block spans carry worker pids."""
        tele = telemetry.enable(directory=tmp_path)
        characterize(calm, samples=4 * BLOCK, chunk=BLOCK, workers=2, cache=False)
        snap = tele.snapshot()
        assert snap.phase("mc.block").count == 4
        assert snap.gauges["pool.workers"] == 2
        assert 0.0 < snap.gauges["pool.utilization"] <= 1.0
        files = sorted(p.name for p in tmp_path.glob("events-*.jsonl"))
        assert files == [f"events-{os.getpid()}.jsonl"]
        pids = {
            json.loads(line).get("pid")
            for line in (tmp_path / files[0]).read_text().splitlines()
        }
        assert len(pids) > 1  # parent + at least one worker


class TestEngineIntegration:
    def test_serial_run_phases_and_gauges(self, calm):
        tele = telemetry.enable()
        characterize(calm, samples=2 * BLOCK, chunk=BLOCK, cache=False)
        snap = tele.snapshot()
        assert snap.phase("characterize").count == 1
        assert snap.phase("mc.block").count == 2
        assert snap.phase("finalize").count == 1
        assert snap.gauges["mc.samples_per_sec"] > 0
        assert snap.gauges["runtime.blocks_per_sec"] > 0

    def test_warmed_cache_counters(self, tmp_path, calm):
        """Acceptance: counters match a deliberately warmed cache — one
        miss + one store cold, one hit (and no store) warm."""
        tele = telemetry.enable()
        cold, cold_snap = characterize(
            calm, samples=BLOCK, cache=tmp_path, with_telemetry=True
        )
        assert cold_snap.counter("cache.misses") == 1
        assert cold_snap.counter("cache.stores") == 1
        assert cold_snap.counter("cache.hits") == 0
        warm, warm_snap = characterize(
            calm, samples=BLOCK, cache=tmp_path, with_telemetry=True
        )
        assert warm == cold
        assert warm_snap.counter("cache.hits") == 1
        assert warm_snap.counter("cache.misses") == 0
        assert warm_snap.counter("cache.stores") == 0
        assert warm_snap.phase("mc.block").count == 0  # nothing recomputed
        telemetry.disable()
        assert tele.snapshot().counter("cache.stores") == 1

    def test_checkpoint_writes_counted(self, tmp_path, calm):
        _, snap = characterize(
            calm, samples=2 * BLOCK, chunk=BLOCK, cache=tmp_path,
            checkpoint=True, with_telemetry=True,
        )
        assert snap.counter("runtime.checkpoint_writes") == 2
        assert snap.phase("checkpoint.save").count == 2

    def test_characterize_many_returns_snapshot(self, calm):
        results, snap = characterize_many(
            [("calm", calm)], samples=BLOCK, cache=False, with_telemetry=True
        )
        assert set(results) == {"calm"}
        assert snap.phase("mc.block").count == 1

    def test_sweep_returns_snapshot(self):
        from repro.analysis.designspace import sweep

        points, snap = sweep(
            ("calm", "realm16-t0"), samples=BLOCK, cache=False,
            with_telemetry=True,
        )
        assert len(points) == 2
        assert snap.phase("mc.block").count == 2

    def test_progress_events_still_delivered(self, calm):
        """Telemetry-backed events must not break the progress callback."""
        events = []
        telemetry.enable()
        characterize(
            calm, samples=2 * BLOCK, chunk=BLOCK, cache=False,
            progress=events.append,
        )
        kinds = [e["event"] for e in events]
        assert kinds.count("progress") == 2
        assert kinds[-1] == "done"


class TestCliTrace:
    def test_trace_summary_within_ten_percent_of_runtime(self, tmp_path, capsys):
        """ISSUE acceptance: a traced 2^16-sample characterize produces a
        JSONL trace whose leaf-phase wall times sum to within 10% of the
        total runtime."""
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "characterize", "realm16-t0",
                "--samples", str(1 << 16), "--no-cache",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert trace.exists()
        summary = telemetry.summarize_trace(trace)
        total = summary["phases"]["characterize"].wall
        leaves = sum(
            stat.wall
            for name, stat in summary["phases"].items()
            if name != "characterize"
        )
        assert total > 0
        assert abs(leaves - total) / total < 0.10
        assert summary["total_wall"] is not None
        assert summary["total_wall"] >= total
        # tracing deactivated cleanly
        assert telemetry.get() is telemetry.DISABLED
        assert TELEMETRY_ENV not in os.environ

    def test_trace_records_cache_hit_on_warm_run(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = [
            "characterize", "calm", "--samples", str(1 << 16),
            "--cache", str(cache),
        ]
        assert main(args) == 0
        trace = tmp_path / "warm.jsonl"
        assert main(args + ["--trace", str(trace)]) == 0
        capsys.readouterr()
        summary = telemetry.summarize_trace(trace)
        assert summary["counters"].get("cache.hits") == 1
        assert "cache.misses" not in summary["counters"]
        assert summary["phases"]["mc.block"].count == 0 if "mc.block" in summary["phases"] else True

    def test_summarize_subcommand_prints_table(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "characterize", "calm", "--samples", str(1 << 16),
                    "--no-cache", "--trace", str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "mc.block" in out and "wall s" in out

    def test_summarize_missing_trace_errors(self, tmp_path, capsys):
        assert main(["telemetry", "summarize", str(tmp_path / "nope.jsonl")]) == 1

    def test_retrace_to_same_path_replaces_previous_trace(self, tmp_path):
        # regression: tracing used to append, so re-tracing to the same
        # path mixed two runs and summarize_trace double-counted
        trace = tmp_path / "trace.jsonl"
        for _ in range(2):
            with telemetry.tracing(trace) as tele:
                tele.counter("x")
        summary = telemetry.summarize_trace(trace)
        assert summary["counters"] == {"x": 1}
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert sum(e.get("event") == "trace.complete" for e in events) == 1

    def test_tracing_ignores_stale_worker_files_in_parent_dir(self, tmp_path):
        # regression: the drop zone was the trace's parent directory, so
        # merge absorbed (and deleted) events-*.jsonl leftovers that a
        # crashed or concurrent traced run had parked there
        stale = tmp_path / "events-99999.jsonl"
        stale.write_text(
            json.dumps({"event": "counter", "name": "stale", "value": 7, "t": 1.0})
            + "\n"
        )
        trace = tmp_path / "trace.jsonl"
        with telemetry.tracing(trace) as tele:
            tele.counter("mine")
        summary = telemetry.summarize_trace(trace)
        assert summary["counters"] == {"mine": 1}
        assert stale.exists()  # someone else's evidence, left untouched
        # the per-run drop zone was cleaned up
        assert list(tmp_path.glob("trace.jsonl.workers-*")) == []


class TestChaosInterplay:
    """Satellite: telemetry counters exactly match chaos firing counts."""

    def _firings(self, directory, spec):
        # single-spec plans: the claim lock files are claim-0-<slot>, one
        # per claim attempt; firings are the claims that won a slot
        claims = len(list(directory.glob("claim-0-*")))
        return min(spec.times, claims)

    def test_retry_counter_matches_serial_raise_firings(self, tmp_path, calm):
        spec = FaultSpec(kind="raise", block=1, times=2)
        chaos.install([spec], tmp_path)
        tele = telemetry.enable()
        characterize(
            calm, samples=2 * BLOCK, chunk=BLOCK, cache=False,
            policy=ResiliencePolicy(max_retries=3, **FAST),
        )
        fired = self._firings(tmp_path, spec)
        assert fired == 2
        assert tele.snapshot().counter("runtime.retries") == fired

    def test_retry_counter_matches_corrupt_firings(self, tmp_path, calm):
        spec = FaultSpec(kind="corrupt", block=0, times=1)
        chaos.install([spec], tmp_path)
        tele = telemetry.enable()
        characterize(
            calm, samples=2 * BLOCK, chunk=BLOCK, cache=False,
            policy=ResiliencePolicy(max_retries=2, **FAST),
        )
        assert self._firings(tmp_path, spec) == 1
        assert tele.snapshot().counter("runtime.retries") == 1

    def test_rebuild_counter_matches_crash_firings(
        self, tmp_path, monkeypatch, calm
    ):
        spec = FaultSpec(kind="crash", block=0, times=1)
        plan = ChaosPlan((spec,), str(tmp_path))
        monkeypatch.setenv(CHAOS_ENV, plan.to_json())
        tele = telemetry.enable()
        characterize(
            calm, samples=2 * BLOCK, chunk=BLOCK, cache=False, workers=2,
            policy=ResiliencePolicy(max_retries=2, **FAST),
        )
        fired = self._firings(tmp_path, spec)
        snap = tele.snapshot()
        assert fired == 1
        # one crash kills the pool exactly once; no degradation
        assert snap.counter("runtime.pool_rebuilds") == fired
        assert snap.counter("runtime.degraded") == 0

    def test_degraded_counter_after_persistent_crashes(
        self, tmp_path, monkeypatch, calm
    ):
        spec = FaultSpec(kind="crash", block=0, times=99)
        plan = ChaosPlan((spec,), str(tmp_path))
        monkeypatch.setenv(CHAOS_ENV, plan.to_json())
        tele = telemetry.enable()
        characterize(
            calm, samples=2 * BLOCK, chunk=BLOCK, cache=False, workers=2,
            policy=ResiliencePolicy(max_retries=0, max_pool_rebuilds=1, **FAST),
        )
        snap = tele.snapshot()
        # rebuild budget exhausted: rebuilds = budget + 1, degraded once
        assert snap.counter("runtime.pool_rebuilds") == 2
        assert snap.counter("runtime.degraded") == 1
