"""Every registry id must be a full citizen of every structure table.

A new multiplier family touches half a dozen layers: the functional
registry, the netlist catalog, the coverage segment table, the kernel
compiler, the exhaustive-metrics sweep and the formal encoders.  Each of
those used to discover missing entries lazily (a silent 4x4 coverage
fallback, a KeyError deep inside a sweep).  This module makes the
contract explicit: adding a registry id without declaring its structure
everywhere is a loud, attributable test failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.exhaustive import exhaustive_metrics
from repro.circuits.catalog import NETLISTS
from repro.conformance.coverage import FAMILY_SEGMENTS, default_segments
from repro.formal.encode import UnsupportedDesignError, encode_model
from repro.kernels.compiler import kernel_for
from repro.multipliers.registry import REGISTRY, build

SMALL_BITWIDTH = 8


def _build_any(name):
    """Build at 16 bits, falling back to 8 for narrow-only configs."""
    try:
        return build(name, 16)
    except ValueError:
        return build(name, SMALL_BITWIDTH)


ALL_IDS = sorted(REGISTRY)


def test_catalog_and_registry_agree():
    assert set(NETLISTS) == set(REGISTRY)


def test_every_family_has_a_segment_entry():
    families = {_build_any(name).family for name in ALL_IDS}
    missing = families - set(FAMILY_SEGMENTS)
    assert not missing, f"families without FAMILY_SEGMENTS entry: {missing}"


def test_segment_entries_are_powers_of_two():
    for family, m in FAMILY_SEGMENTS.items():
        assert m >= 1 and (m & (m - 1)) == 0, (family, m)


def test_unknown_family_raises_not_falls_back():
    class Stranger:
        family = "NoSuchFamily"

    with pytest.raises(KeyError, match="NoSuchFamily"):
        default_segments(Stranger())


@pytest.mark.parametrize("name", ALL_IDS)
def test_id_resolves_across_structure_tables(name):
    model = _build_any(name)
    # coverage structure is declared, not defaulted
    assert default_segments(model) >= 1
    # a netlist factory exists under the same id
    assert name in NETLISTS
    # the kernel compiler produces an evaluator of some kind
    kernel = kernel_for(model)
    assert kernel.kind in ("table", "full-table", "direct", "interpreted")


@pytest.mark.parametrize(
    "name",
    ["scaletrim-t3-c2", "scaletrim-t4-c0", "scaletrim-t4-c2",
     "scaletrim-t6-c3", "dnnco-l4", "dnnco-l6", "dnnco-l8"],
)
def test_new_family_ids_full_stack_smoke(name):
    """The two new families clear model/kernel/metrics/formal at 8 bits."""
    model = build(name, SMALL_BITWIDTH)
    kernel = kernel_for(model)
    a = np.arange(256, dtype=np.int64).repeat(4)
    b = np.tile(np.arange(0, 1024, 4, dtype=np.int64) % 256, 4)[: a.size]
    np.testing.assert_array_equal(kernel(a, b), model.multiply(a, b))
    metrics = exhaustive_metrics(model)
    assert np.isfinite(metrics.nmed)
    try:
        encoding = encode_model(model)
    except UnsupportedDesignError as exc:
        pytest.skip(f"no symbolic encoding: {exc}")
    pairs = np.array([(0, 0), (1, 1), (255, 255), (170, 85), (128, 3)],
                     dtype=np.int64)
    got = encoding.eval_pairs(pairs[:, 0], pairs[:, 1])
    want = model.multiply(pairs[:, 0], pairs[:, 1])
    np.testing.assert_array_equal(got, want)
