"""Tests for the Fig. 5 histograms and the Fig. 4 Pareto machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distribution import ascii_histogram, error_histogram
from repro.analysis.pareto import is_dominated, pareto_front
from repro.core.realm import RealmMultiplier


class TestErrorHistogram:
    def test_density_normalized(self):
        hist = error_histogram(RealmMultiplier(m=4), samples=1 << 16)
        assert hist.density.sum() == pytest.approx(1.0)
        assert len(hist.edges) == len(hist.density) + 1

    def test_fig5_narrowing_with_m(self):
        spreads = [
            error_histogram(RealmMultiplier(m=m), samples=1 << 18).spread()
            for m in (4, 8, 16)
        ]
        assert spreads[2] < spreads[1] < spreads[0]

    def test_fig5_centered_near_zero(self):
        hist = error_histogram(RealmMultiplier(m=16), samples=1 << 18)
        assert abs(hist.mode_center()) < 0.5

    def test_fig5_t9_widens(self):
        tight = error_histogram(RealmMultiplier(m=8, t=0), samples=1 << 18)
        loose = error_histogram(RealmMultiplier(m=8, t=9), samples=1 << 18)
        assert loose.spread() > tight.spread()

    def test_clipping_keeps_tail_mass(self):
        hist = error_histogram(
            RealmMultiplier(m=4, t=9), samples=1 << 16, span=1.0
        )
        # errors beyond ±1% land in the edge bins instead of vanishing
        assert hist.density.sum() == pytest.approx(1.0)
        assert hist.density[0] > 0 or hist.density[-1] > 0


class TestAsciiHistogram:
    def test_length(self):
        hist = error_histogram(RealmMultiplier(m=4), samples=1 << 14, bins=64)
        assert len(ascii_histogram(hist)) == 64


class TestParetoFront:
    def test_hand_crafted(self):
        points = {
            "a": (10.0, 5.0),  # dominated by b
            "b": (20.0, 4.0),
            "c": (30.0, 6.0),  # on front: best x among y<=6 ... dominated?
            "d": (25.0, 3.0),
        }
        # efficiency maximized, error minimized:
        # b dominated by d (25>20, 3<4); c not dominated (highest x)
        front = pareto_front(points)
        assert front == ["d", "c"]

    def test_single_point(self):
        assert pareto_front({"only": (1.0, 1.0)}) == ["only"]

    def test_duplicates_both_kept(self):
        front = pareto_front({"a": (5.0, 1.0), "b": (5.0, 1.0)})
        assert sorted(front) == ["a", "b"]

    def test_minimize_x_mode(self):
        points = {"cheap": (1.0, 5.0), "costly": (9.0, 4.0)}
        front = pareto_front(points, maximize_x=False)
        assert set(front) == {"cheap", "costly"}

    def test_is_dominated(self):
        assert is_dominated((1.0, 5.0), [(2.0, 4.0)])
        assert not is_dominated((2.0, 4.0), [(1.0, 5.0)])
        assert not is_dominated((1.0, 5.0), [(1.0, 5.0)])  # itself only

    @given(
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=3),
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_front_properties(self, points):
        front = pareto_front(points)
        values = list(points.values())
        assert front  # never empty
        # every front member is non-dominated, every non-member dominated
        for name, coords in points.items():
            if name in front:
                assert not is_dominated(coords, values)
            else:
                assert is_dominated(coords, values)
        # front is sorted by efficiency
        xs = [points[name][0] for name in front]
        assert xs == sorted(xs)
